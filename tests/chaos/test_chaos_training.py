"""Chaos suite: seeded fault matrices against sharded training.

Every scenario checks the same invariants:

- **no hang** — training returns (a lost device aborts at a wave
  boundary and its problems are recovered on survivors);
- **bitwise parity** — the final model (records, pool, sigmoids) is
  identical to the fault-free run, checkpoints and re-placement
  included;
- **bounded inflation** — faults stretch the simulated makespan by a
  bounded factor, never unboundedly;
- **no silent wrong answers** — failures surface as explicit errors or
  report entries, never as different numbers.
"""

import os
import warnings

import numpy as np
import pytest

from repro.core.trainer import TrainerConfig
from repro.data import gaussian_blobs
from repro.distributed import ClusterSpec, train_multiclass_sharded
from repro.exceptions import SolverError, ValidationError
from repro.faults import DeviceLoss, FaultPlan, LinkFault
from repro.gpusim.device import scaled_tesla_p100
from repro.kernels.functions import kernel_from_name

N_DEVICES = 4
# Seeded-plan matrix width: 8 per PR, widened by nightly CI
# (REPRO_CHAOS_SEEDS=24) for the full sweep.
N_SEEDS = int(os.environ.get("REPRO_CHAOS_SEEDS", "8"))


def _train(cluster, workload, **kwargs):
    x, y, kernel, config = workload
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return train_multiclass_sharded(
            config, cluster, x, y, kernel, 1.0, **kwargs
        )


def _models_equal(model_a, model_b) -> bool:
    if len(model_a.records) != len(model_b.records):
        return False
    for a, b in zip(model_a.records, model_b.records):
        if not (
            np.array_equal(a.global_sv_indices, b.global_sv_indices)
            and np.array_equal(a.coefficients, b.coefficients)
            and a.bias == b.bias
        ):
            return False
    return model_a.sv_pool.n_pool == model_b.sv_pool.n_pool


@pytest.fixture(scope="module")
def workload():
    x, y = gaussian_blobs(n=88, n_features=5, n_classes=4, seed=7)
    kernel = kernel_from_name("gaussian", gamma=0.4)
    config = TrainerConfig(device=scaled_tesla_p100(), working_set_size=24)
    return x, y, kernel, config


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec(device=scaled_tesla_p100(), n_devices=N_DEVICES)


@pytest.fixture(scope="module")
def baseline(workload, cluster):
    """The fault-free model and report every scenario compares against."""
    return _train(cluster, workload)


@pytest.fixture(scope="module")
def checkpointed_baseline(workload, cluster):
    """Fault-free run paying the same checkpoint cadence as the chaos
    runs — the fair yardstick for makespan inflation, since checkpoint
    shipping dominates on a workload this small."""
    return _train(
        cluster, workload, checkpoint_dir=":memory:", checkpoint_every=2
    )


class TestSeededFaultMatrix:
    """The headline matrix: seeded-random plans, straggler x loss-time."""

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_random_plan_keeps_bitwise_parity(
        self, seed, workload, cluster, baseline, checkpointed_baseline
    ):
        base_model, base_report = baseline
        _, ckpt_report = checkpointed_baseline
        plan = FaultPlan.random(
            seed,
            N_DEVICES,
            loss_window_s=base_report.simulated_seconds,
            link_fault_probability=0.3,
        )
        model, report = _train(
            cluster, workload, fault_plan=plan, checkpoint_every=2
        )
        assert _models_equal(base_model, model)
        # No hang, and the timeline never inflates unboundedly against a
        # baseline paying the same checkpoint cadence: stragglers are
        # capped at 3x, one lost device's work lands on 3 survivors.
        inflation = report.simulated_seconds / ckpt_report.simulated_seconds
        assert 0 < inflation < 8.0
        if plan.is_empty:
            assert report.faults == {}
        else:
            assert report.faults["plan"]["seed"] == seed
            lost = report.faults["devices_lost"]
            assert set(lost) <= {loss.device for loss in plan.losses}
            if lost:
                assert report.faults["recovery"]["recovered_problems"] > 0

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_same_seed_replays_identical_timeline(
        self, seed, workload, cluster
    ):
        plan_a = FaultPlan.random(seed, N_DEVICES)
        plan_b = FaultPlan.random(seed, N_DEVICES)
        assert plan_a == plan_b


class TestScriptedLoss:
    """Loss-time x placement: recovery resumes from the checkpoint."""

    @pytest.mark.parametrize("placement", ("affinity", "round_robin"))
    @pytest.mark.parametrize("fraction", (0.3, 0.6))
    def test_loss_recovers_bitwise(
        self, fraction, placement, workload, cluster, baseline
    ):
        base_model, base_report = baseline
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            placed_model, placed_report = train_multiclass_sharded(
                workload[3], cluster, workload[0], workload[1],
                workload[2], 1.0,
                placement=placement,
                checkpoint_dir=":memory:", checkpoint_every=2,
            )
        plan = FaultPlan(
            losses=(
                DeviceLoss(1, placed_report.simulated_seconds * fraction),
            )
        )
        model, report = _train(
            cluster,
            workload,
            placement=placement,
            fault_plan=plan,
            checkpoint_every=2,
        )
        assert _models_equal(base_model, model)
        recovery = report.faults["recovery"]
        assert recovery["recovered_problems"] >= 1
        assert recovery["survivors"] == [0, 2, 3]
        assert report.per_device[1]["lost"] is True
        # Bounded inflation against the checkpointed baseline.
        inflation = report.simulated_seconds / placed_report.simulated_seconds
        assert inflation < 2.5

    @pytest.mark.parametrize("device", range(N_DEVICES))
    def test_any_single_device_loss_recovers(
        self, device, workload, cluster, baseline
    ):
        base_model, _ = baseline
        # Loss at t=0 fires at the device's first wave boundary, so every
        # device — even one with a single short problem — observes it.
        plan = FaultPlan(losses=(DeviceLoss(device, 0.0),))
        model, report = _train(
            cluster, workload, fault_plan=plan, checkpoint_every=3
        )
        assert _models_equal(base_model, model)
        if report.per_device[device]["n_svms"] == 0:
            # An idle device (affinity packing can leave one without
            # work) never observes the loss: nothing to recover.
            assert report.faults["devices_lost"] == []
            assert report.faults["recovery"] == {}
        else:
            survivors = report.faults["recovery"]["survivors"]
            assert device not in survivors
            assert len(survivors) == N_DEVICES - 1

    def test_loss_before_first_checkpoint_restarts_from_scratch(
        self, workload, cluster, baseline
    ):
        base_model, _ = baseline
        plan = FaultPlan(losses=(DeviceLoss(2, 0.0),))
        # A huge cadence means no checkpoint ever ships: recovery replays
        # the lost problems from round zero and still matches bitwise.
        model, report = _train(
            cluster, workload, fault_plan=plan, checkpoint_every=10_000
        )
        assert _models_equal(base_model, model)
        assert report.faults["recovery"]["resumed_from_checkpoint"] == 0

    def test_all_devices_lost_is_an_explicit_error(self, workload):
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        plan = FaultPlan(losses=(DeviceLoss(0, 0.0), DeviceLoss(1, 0.0)))
        with pytest.raises(SolverError, match="nothing"):
            _train(cluster, workload, fault_plan=plan)

    def test_loss_of_root_moves_merge_root(self, workload, cluster, baseline):
        base_model, base_report = baseline
        plan = FaultPlan(
            losses=(DeviceLoss(0, base_report.simulated_seconds * 0.4),)
        )
        model, report = _train(cluster, workload, fault_plan=plan)
        assert _models_equal(base_model, model)
        # Device 0 is gone, so the SV merge gathered somewhere else and
        # the lost device took part in no merge transfer after the loss.
        assert report.faults["recovery"]["survivors"][0] == 1


class TestStragglersAndLinks:
    def test_straggler_stretches_only_the_timeline(
        self, workload, cluster, checkpointed_baseline
    ):
        base_model, base_report = checkpointed_baseline
        plan = FaultPlan(stragglers={0: 2.0, 3: 1.5})
        model, report = _train(
            cluster, workload, fault_plan=plan, checkpoint_every=2
        )
        assert _models_equal(base_model, model)
        assert report.simulated_seconds > base_report.simulated_seconds
        # A 2x straggler can at most double the makespan relative to a
        # run paying the same checkpoint cadence (plus slack for wave
        # packing shifting under the stretched clock).
        inflation = report.simulated_seconds / base_report.simulated_seconds
        assert inflation < 2.5

    def test_link_fault_charges_retries(self, workload, cluster, baseline):
        base_model, base_report = baseline
        # Host-link fault window covering the initial class-block
        # transfers (device clocks start at zero).
        plan = FaultPlan(
            link_faults=tuple(
                LinkFault(-1, device, 0.0, 1.0)
                for device in range(N_DEVICES)
            )
        )
        model, report = _train(cluster, workload, fault_plan=plan)
        assert _models_equal(base_model, model)
        assert report.faults["link_retries"] > 0
        assert report.simulated_seconds > base_report.simulated_seconds

    def test_losses_accept_bare_tuples(self, workload, cluster, baseline):
        base_model, base_report = baseline
        plan = FaultPlan(
            losses=((1, base_report.simulated_seconds * 0.5),),
            link_faults=((0, 1, 0.0, 0.5),),
        )
        model, _ = _train(cluster, workload, fault_plan=plan)
        assert _models_equal(base_model, model)


class TestCheckpointDurability:
    def test_checkpoints_persist_and_reload(
        self, workload, cluster, tmp_path
    ):
        _, report = _train(
            cluster,
            workload,
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        written = sorted(tmp_path.glob("ckpt-d*-w*.json"))
        assert written
        from repro.faults import CheckpointStore

        loaded = CheckpointStore().load(written[0])
        assert loaded.snapshots
        for snapshot in loaded.snapshots.values():
            assert snapshot.alpha.shape == snapshot.f.shape
        assert report.faults["checkpoints_written"] == len(written)

    def test_fault_free_run_with_faultless_plan_is_nominal(
        self, workload, cluster, baseline
    ):
        base_model, base_report = baseline
        model, report = _train(cluster, workload, fault_plan=FaultPlan())
        assert _models_equal(base_model, model)
        assert report.simulated_seconds == base_report.simulated_seconds
        assert report.faults == {}

    def test_checkpoint_every_validated(self, workload, cluster):
        with pytest.raises(ValidationError, match="checkpoint_every"):
            _train(cluster, workload, checkpoint_every=0)
