"""Unit tests for repro.faults: plans, clock rates, checkpoints.

Covers the pieces the chaos scenarios compose: straggler clock scaling,
snapshot/restore bitwise round-trips, the versioned checkpoint format's
corruption handling, and fault-plan validation/determinism.
"""

import json

import numpy as np
import pytest

from repro.data import gaussian_blobs
from repro.exceptions import (
    CheckpointError,
    DeviceLostError,
    ValidationError,
)
from repro.faults import (
    CheckpointStore,
    DeviceLoss,
    FaultInjector,
    FaultPlan,
    LinkFault,
    SessionSnapshot,
    TrainingCheckpoint,
)
from repro.gpusim.clock import SimClock, TimeCharge
from repro.gpusim.device import scaled_tesla_p100
from repro.gpusim.engine import make_engine
from repro.kernels.functions import kernel_from_name
from repro.kernels.rows import KernelRowComputer
from repro.multiclass.decomposition import class_partition, pair_problems
from repro.solvers.batch_smo import BatchSMOSolver
from repro.sparse import ops as mops


class TestClockRate:
    def test_rate_scales_charges(self):
        clock = SimClock()
        clock.charge("solve", TimeCharge(latency_s=1.0, compute_s=2.0))
        clock.rate = 2.0
        clock.charge("solve", TimeCharge(latency_s=1.0, compute_s=2.0))
        assert clock.elapsed_s == pytest.approx(9.0)

    def test_rate_does_not_rescale_merges(self):
        fast = SimClock()
        fast.charge("solve", TimeCharge(compute_s=1.0))
        slow = SimClock()
        slow.rate = 3.0
        slow.merge(fast)  # already-charged time merges verbatim
        assert slow.elapsed_s == pytest.approx(1.0)

    def test_copy_preserves_rate(self):
        clock = SimClock()
        clock.rate = 1.5
        assert clock.copy().rate == 1.5

    def test_rate_validated(self):
        clock = SimClock()
        for bad in (0.0, -1.0):
            with pytest.raises(ValidationError, match="rate"):
                clock.rate = bad


class TestFaultPlan:
    def test_duplicate_loss_rejected(self):
        with pytest.raises(ValidationError, match="one scripted loss"):
            FaultPlan(losses=(DeviceLoss(0, 1.0), DeviceLoss(0, 2.0)))

    def test_bad_straggler_rate_rejected(self):
        with pytest.raises(ValidationError, match="positive"):
            FaultPlan(stragglers={0: 0.0})
        with pytest.raises(ValidationError, match=">= 0"):
            FaultPlan(stragglers={-1: 2.0})

    def test_loss_and_link_validation(self):
        with pytest.raises(ValidationError, match="loss time"):
            DeviceLoss(0, -1.0)
        with pytest.raises(ValidationError, match="duration"):
            LinkFault(0, 1, 0.0, 0.0)

    def test_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(stragglers={0: 2.0}).is_empty

    def test_random_is_deterministic_and_bounded(self):
        for seed in range(20):
            a = FaultPlan.random(seed, 4, max_straggler_rate=3.0)
            b = FaultPlan.random(seed, 4, max_straggler_rate=3.0)
            assert a == b
            assert a.seed == seed
            assert all(1.0 < rate <= 3.0 for rate in a.stragglers.values())
            assert len(a.losses) <= 1  # single-failure model

    def test_summary_is_json_ready(self):
        plan = FaultPlan.random(3, 4, link_fault_probability=1.0)
        json.dumps(plan.summary())


class TestFaultInjector:
    def test_out_of_range_devices_rejected(self):
        with pytest.raises(ValidationError, match="out of range"):
            FaultInjector(FaultPlan(stragglers={5: 2.0}), 2)
        with pytest.raises(ValidationError, match="out of range"):
            FaultInjector(FaultPlan(losses=(DeviceLoss(5, 1.0),)), 2)

    def test_check_device_fires_once_past_loss_time(self):
        injector = FaultInjector(FaultPlan(losses=(DeviceLoss(1, 5.0),)), 4)
        injector.check_device(1, 4.9)  # before the loss: no-op
        injector.check_device(0, 100.0)  # other devices unaffected
        with pytest.raises(DeviceLostError) as info:
            injector.check_device(1, 5.0)
        assert info.value.device == 1
        assert info.value.at_s == 5.0
        assert injector.devices_lost == [1]

    def test_link_penalty_counts_retries(self):
        fault = LinkFault(0, 1, 1.0, 2.0, retry_latency_s=0.25)
        injector = FaultInjector(FaultPlan(link_faults=(fault,)), 2)
        assert injector.link_penalty_s(0, 1, 0.5) == 0.0
        assert injector.link_penalty_s(1, 0, 1.5) == 0.25  # direction-free
        assert injector.link_penalty_s(0, 1, 3.5) == 0.0
        assert injector.n_link_retries == 1


def _session_factory():
    """Fresh, identical solver sessions over one small binary problem."""
    x, y = gaussian_blobs(n=44, n_features=4, n_classes=2, seed=5)
    classes, partition = class_partition(np.asarray(y).ravel())
    problem = next(iter(pair_problems(classes, partition)))
    kernel = kernel_from_name("gaussian", gamma=0.5)
    data = mops.take_rows(np.asarray(x), problem.global_indices)

    def make():
        engine = make_engine(scaled_tesla_p100())
        rows = KernelRowComputer(engine, kernel, data)
        solver = BatchSMOSolver(penalty=1.0, working_set_size=16)
        return solver.start(rows, problem.labels)

    return make


def _drive(session, rounds=None):
    done = 0
    while rounds is None or done < rounds:
        if session.begin_round() is None:
            return True
        session.complete_round()
        done += 1
    return False


class TestSnapshotRestore:
    def test_restored_session_replays_bitwise(self):
        make = _session_factory()
        reference = make()
        _drive(reference)
        expected = reference.finish()

        # Run a twin a few rounds, snapshot, restore into a fresh
        # session, and drive that to convergence.
        source = make()
        finished_early = _drive(source, rounds=3)
        assert not finished_early
        state = source.snapshot_state()

        resumed = make()
        resumed.restore_state(state)
        _drive(resumed)
        result = resumed.finish()
        assert np.array_equal(expected.alpha, result.alpha)
        assert expected.bias == result.bias
        assert expected.iterations == result.iterations

    def test_snapshot_mid_round_rejected(self):
        session = _session_factory()()
        session.begin_round()
        with pytest.raises(ValidationError, match="in flight"):
            session.snapshot_state()

    def test_restore_shape_mismatch_rejected(self):
        make = _session_factory()
        session = make()
        state = session.snapshot_state()
        state["alpha"] = state["alpha"][:-1]
        fresh = make()
        with pytest.raises(ValidationError):
            fresh.restore_state(state)


def _snapshot(index=0, n=6):
    rng = np.random.default_rng(index)
    return SessionSnapshot(
        problem_index=index,
        alpha=rng.normal(size=n),
        f=rng.normal(size=n),
        rounds=3,
        inner_total=17,
        ws_order=(1, 4, 2),
        stalled=0,
        converged=False,
        finished=False,
    )


class TestCheckpointFormat:
    def test_round_trip_is_lossless(self):
        checkpoint = TrainingCheckpoint(
            device=1,
            wave=4,
            simulated_s=0.25,
            snapshots={0: _snapshot(0), 3: _snapshot(3)},
        )
        raw = json.loads(json.dumps(checkpoint.to_json()))
        loaded = TrainingCheckpoint.from_json(raw)
        assert loaded.device == 1 and loaded.wave == 4
        for index in (0, 3):
            a, b = checkpoint.snapshots[index], loaded.snapshots[index]
            assert np.array_equal(a.alpha, b.alpha)
            assert np.array_equal(a.f, b.f)
            assert a.ws_order == b.ws_order

    def test_wrong_format_rejected(self):
        with pytest.raises(CheckpointError, match="not a"):
            TrainingCheckpoint.from_json({"format": "something-else"})

    def test_newer_version_rejected(self):
        raw = TrainingCheckpoint(0, 1, 0.0, {}).to_json()
        raw["version"] = 99
        with pytest.raises(CheckpointError, match="newer"):
            TrainingCheckpoint.from_json(raw)

    def test_corrupt_base64_rejected(self):
        raw = TrainingCheckpoint(0, 1, 0.0, {0: _snapshot()}).to_json()
        raw["snapshots"][0]["alpha_b64"] = "!!! not base64 !!!"
        with pytest.raises(CheckpointError, match="base64"):
            TrainingCheckpoint.from_json(raw)

    def test_truncated_payload_rejected(self):
        raw = TrainingCheckpoint(0, 1, 0.0, {0: _snapshot()}).to_json()
        raw["snapshots"][0]["n"] = 999
        with pytest.raises(CheckpointError, match="elements"):
            TrainingCheckpoint.from_json(raw)

    def test_missing_field_rejected(self):
        raw = TrainingCheckpoint(0, 1, 0.0, {0: _snapshot()}).to_json()
        del raw["snapshots"][0]["rounds"]
        with pytest.raises(CheckpointError, match="malformed"):
            TrainingCheckpoint.from_json(raw)


class TestCheckpointStore:
    def test_memory_store_tracks_latest(self):
        store = CheckpointStore()
        store.save(TrainingCheckpoint(0, 2, 0.1, {0: _snapshot()}))
        store.save(TrainingCheckpoint(0, 4, 0.2, {0: _snapshot()}))
        assert store.latest(0).wave == 4
        assert store.latest(1) is None
        assert store.n_written == 2

    def test_disk_store_round_trips(self, tmp_path):
        store = CheckpointStore(tmp_path)
        checkpoint = TrainingCheckpoint(2, 6, 0.5, {1: _snapshot(1)})
        store.save(checkpoint)
        path = tmp_path / "ckpt-d2-w6.json"
        assert path.exists()
        loaded = store.load(path)
        assert loaded.device == 2 and loaded.wave == 6
        assert np.array_equal(
            loaded.snapshots[1].alpha, checkpoint.snapshots[1].alpha
        )

    def test_load_missing_or_corrupt_raises(self, tmp_path):
        store = CheckpointStore()
        with pytest.raises(CheckpointError, match="missing"):
            store.load(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated", encoding="utf-8")
        with pytest.raises(CheckpointError, match="JSON"):
            store.load(bad)
