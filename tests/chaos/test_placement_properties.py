"""Property tests for placement planning over hierarchical clusters.

Seeded random workload matrices (widened by nightly CI via
``REPRO_CHAOS_SEEDS``) pin three properties of :func:`plan_placement`:

- **validity** — every plan is a partition of the problems over valid
  devices, deterministically reproducible from the same inputs;
- **flat invariance** — passing a single-node ``ClusterSpec`` changes
  nothing: the node-level tie-break is a constant there, so the plan
  (and hence the bitwise-parity guarantee of the pair-sharded trainer)
  is untouched;
- **node-locality** — on a hierarchical cluster, the topology-aware
  tie-break never duplicates class blocks across more node boundaries
  than the topology-blind plan evaluated on the same node map.
"""

import itertools
import os
from collections import namedtuple

import numpy as np
import pytest

from repro.distributed import ClusterSpec, plan_placement
from repro.exceptions import ValidationError
from repro.gpusim.device import scaled_tesla_p100

N_SEEDS = int(os.environ.get("REPRO_CHAOS_SEEDS", "8"))

Problem = namedtuple("Problem", "s t n")


def _random_workload(seed):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(3, 7))
    pairs = list(itertools.combinations(range(k), 2))
    return [Problem(s, t, int(rng.integers(20, 200))) for s, t in pairs]


def _node_residencies(plan) -> int:
    """Total (class, node) pairs with that class resident on that node."""
    return sum(len(classes) for classes in plan.node_classes)


@pytest.fixture(params=range(N_SEEDS))
def workload(request):
    return _random_workload(request.param)


class TestPlanValidity:
    @pytest.mark.parametrize("strategy", ["affinity", "round_robin"])
    @pytest.mark.parametrize("n_devices,n_nodes", [(4, 1), (4, 2), (6, 3)])
    def test_partition_and_determinism(
        self, workload, strategy, n_devices, n_nodes
    ):
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=n_devices, n_nodes=n_nodes
        )
        plan = plan_placement(
            workload, n_devices, strategy=strategy, cluster=cluster
        )
        assert len(plan.assignments) == len(workload)
        assert all(0 <= d < n_devices for d in plan.assignments)
        flattened = sorted(
            index
            for group in plan.device_problems
            for index in group
        )
        assert flattened == list(range(len(workload)))
        again = plan_placement(
            workload, n_devices, strategy=strategy, cluster=cluster
        )
        assert again.assignments == plan.assignments
        assert plan.n_nodes == n_nodes
        assert plan.node_map == [
            cluster.node_of(d) for d in range(n_devices)
        ]

    def test_summary_carries_topology(self, workload):
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=4, n_nodes=2
        )
        summary = plan_placement(workload, 4, cluster=cluster).summary()
        assert summary["n_nodes"] == 2
        assert len(summary["node_classes"]) == 2

    def test_device_count_mismatch_rejected(self, workload):
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=4)
        with pytest.raises(ValidationError, match="devices"):
            plan_placement(workload, 2, cluster=cluster)


class TestFlatInvariance:
    @pytest.mark.parametrize("strategy", ["affinity", "round_robin"])
    def test_single_node_cluster_changes_nothing(self, workload, strategy):
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=4)
        bare = plan_placement(workload, 4, strategy=strategy)
        aware = plan_placement(
            workload, 4, strategy=strategy, cluster=cluster
        )
        assert bare.assignments == aware.assignments
        assert bare.device_load == aware.device_load


class TestNodeLocality:
    @pytest.mark.parametrize("n_devices,n_nodes", [(4, 2), (6, 2), (6, 3)])
    def test_no_extra_cross_node_duplication(
        self, workload, n_devices, n_nodes
    ):
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=n_devices, n_nodes=n_nodes
        )
        aware = plan_placement(workload, n_devices, cluster=cluster)
        blind = plan_placement(workload, n_devices)
        # Evaluate the topology-blind plan under the same node map.
        blind.n_nodes = n_nodes
        blind.node_map = [cluster.node_of(d) for d in range(n_devices)]
        assert _node_residencies(aware) <= _node_residencies(blind)

    def test_load_balance_not_sacrificed(self, workload):
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=4, n_nodes=2
        )
        aware = plan_placement(workload, 4, cluster=cluster)
        blind = plan_placement(workload, 4)
        # The node-aware tie-break only reorders choices inside the
        # eligibility window, so the makespan estimate stays within one
        # problem weight of the topology-blind plan.
        heaviest = max(float(p.n) ** 2 for p in workload)
        assert max(aware.device_load) <= max(blind.device_load) + heaviest
