"""Shared fixtures: devices, engines, and small reproducible problems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import make_engine, scaled_tesla_p100, xeon_e5_2640v4
from repro.kernels import GaussianKernel, KernelRowComputer
from repro.sparse import CSRMatrix


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def gpu_engine():
    return make_engine(scaled_tesla_p100())


@pytest.fixture
def cpu_engine():
    return make_engine(xeon_e5_2640v4(1))


@pytest.fixture
def dense_matrix(rng):
    """A small dense matrix with some exact zeros."""
    data = rng.normal(size=(12, 7))
    data[rng.random((12, 7)) < 0.3] = 0.0
    return data


@pytest.fixture
def csr_matrix(dense_matrix):
    return CSRMatrix.from_dense(dense_matrix)


def make_binary_problem(n=160, d=8, separation=1.2, seed=3, noise=1.0):
    """A reproducible two-class problem with some overlap."""
    rng = np.random.default_rng(seed)
    half = n // 2
    x = np.vstack(
        [
            rng.normal(-separation / 2, noise, (half, d)),
            rng.normal(separation / 2, noise, (n - half, d)),
        ]
    )
    y = np.concatenate([-np.ones(half), np.ones(n - half)])
    order = rng.permutation(n)
    return x[order], y[order]


@pytest.fixture
def binary_problem():
    return make_binary_problem()


@pytest.fixture
def binary_rows(gpu_engine, binary_problem):
    x, _ = binary_problem
    return KernelRowComputer(gpu_engine, GaussianKernel(gamma=0.25), x)
