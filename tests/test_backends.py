"""The compute-backend registry, conformance gates and precision contract.

Gate policy (DESIGN.md §16): ``numpy64`` is held to **bitwise** parity
with the pre-registry reference implementation; ``numpy32`` is held to
accuracy **deltas** (probability L-infinity, argmax agreement) because a
float32 pipeline cannot — and should not promise to — reproduce float64
bit patterns.
"""

import io

import numpy as np
import pytest

import repro
from repro import GMPSVC, BackendSpec, load_model, save_model
from repro.backends import (
    DEFAULT_BACKEND,
    ComputeBackend,
    Numpy32Backend,
    Numpy64Backend,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)
from repro.backends import base as backends_base
from repro.backends import reference
from repro.core.predictor import PredictorConfig, predict_proba_model
from repro.data import gaussian_blobs
from repro.exceptions import ModelFormatError, ValidationError
from repro.gpusim import make_engine, scaled_tesla_p100
from repro.sparse import CSRMatrix
from repro.sparse import ops as mops

IN_TREE_BACKENDS = ("numpy64", "numpy32")


def _random_operands(seed=0, m=37, n=23, f=12):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, f)), rng.standard_normal((n, f))


def _random_systems(seed=1, batch=5, k=4):
    rng = np.random.default_rng(seed)
    r = rng.standard_normal((batch, k, k))
    matrices = np.einsum("bij,bkj->bik", r, r) + 2.0 * np.eye(k)
    return matrices, np.ones(k)


class _DummyBackend(ComputeBackend):
    name = "dummy-f16"
    dtype = np.float16

    def matmul_transpose(self, a, b):
        return np.asarray(a) @ np.asarray(b).T

    def row_norms_sq(self, matrix):
        return np.einsum("ij,ij->i", matrix, matrix)

    def gaussian_elimination_batch(
        self, matrices, rhs, *, pivot_tolerance=1e-12, on_singular="raise"
    ):
        return reference.gaussian_elimination_batch(
            matrices, rhs,
            pivot_tolerance=pivot_tolerance, on_singular=on_singular,
        )

    def reduce_sum(self, values):
        return float(np.asarray(values).sum())


class TestRegistry:
    def test_in_tree_backends_registered(self):
        assert set(IN_TREE_BACKENDS) <= set(list_backends())
        assert list_backends() == sorted(list_backends())

    def test_get_backend_returns_singletons(self):
        assert get_backend("numpy64") is get_backend("numpy64")
        assert isinstance(get_backend("numpy64"), Numpy64Backend)
        assert isinstance(get_backend("numpy32"), Numpy32Backend)

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValidationError, match="numpy64"):
            get_backend("cuda13")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_backend(Numpy64Backend())

    def test_non_instance_rejected(self):
        with pytest.raises(ValidationError, match="ComputeBackend instance"):
            register_backend(object())
        # The class itself is not enough either: the registry holds
        # configured instances.
        with pytest.raises(ValidationError, match="ComputeBackend instance"):
            register_backend(Numpy64Backend)

    def test_abstract_name_rejected(self):
        class Nameless(_DummyBackend):
            name = "abstract"

        with pytest.raises(ValidationError, match="non-empty name"):
            register_backend(Nameless())

    def test_user_backend_registers_and_resolves(self):
        backend = _DummyBackend()
        try:
            assert register_backend(backend) is backend
            assert get_backend("dummy-f16") is backend
            assert "dummy-f16" in list_backends()
            assert BackendSpec(name="dummy-f16").resolve() is backend
        finally:
            del backends_base._REGISTRY["dummy-f16"]
        assert "dummy-f16" not in list_backends()


class TestBackendSpec:
    def test_default_is_reference(self):
        assert BackendSpec().name == DEFAULT_BACKEND == "numpy64"
        assert isinstance(BackendSpec().resolve(), Numpy64Backend)

    def test_unknown_name_rejected_with_choices(self):
        with pytest.raises(ValidationError, match="numpy32"):
            BackendSpec(name="numpy16")

    def test_unknown_keyword_rejected(self):
        with pytest.raises(ValidationError, match="precision"):
            BackendSpec(precision="single")

    def test_spec_is_frozen(self):
        with pytest.raises(Exception):
            BackendSpec().name = "numpy32"


class TestResolveBackend:
    def test_none_is_default(self):
        assert resolve_backend(None) is get_backend(DEFAULT_BACKEND)

    def test_name_and_spec_and_instance(self):
        assert resolve_backend("numpy32") is get_backend("numpy32")
        assert (
            resolve_backend(BackendSpec(name="numpy32"))
            is get_backend("numpy32")
        )
        unregistered = _DummyBackend()
        assert resolve_backend(unregistered) is unregistered

    def test_other_types_rejected(self):
        with pytest.raises(ValidationError, match="BackendSpec"):
            resolve_backend(32)


@pytest.mark.parametrize("name", IN_TREE_BACKENDS)
class TestConformance:
    """Every registered backend satisfies the primitive contract.

    The reference backend additionally matches the pre-registry
    implementation bitwise; the float32 backend is checked against
    float32-rounding tolerances.
    """

    def test_matmul_transpose_dense(self, name):
        backend = get_backend(name)
        a, b = _random_operands()
        got = backend.matmul_transpose(a, b)
        expected = reference.matmul_transpose(a, b)
        assert got.shape == (a.shape[0], b.shape[0])
        if name == "numpy64":
            assert got.dtype == np.float64
            assert np.array_equal(got, expected)
        else:
            assert got.dtype == np.float32
            assert np.allclose(got, expected, atol=1e-4)

    def test_matmul_transpose_csr(self, name):
        backend = get_backend(name)
        a, b = _random_operands(seed=3)
        a[np.abs(a) < 0.8] = 0.0
        got = backend.matmul_transpose(CSRMatrix.from_dense(a), b)
        expected = reference.matmul_transpose(CSRMatrix.from_dense(a), b)
        assert got.dtype == backend.dtype
        if name == "numpy64":
            assert np.array_equal(got, expected)
        else:
            assert np.allclose(got, expected, atol=1e-4)

    def test_row_norms_sq(self, name):
        backend = get_backend(name)
        a, _ = _random_operands(seed=4)
        got = backend.row_norms_sq(a)
        expected = mops.row_norms_sq(a)
        assert got.dtype == backend.dtype
        if name == "numpy64":
            assert np.array_equal(got, expected)
        else:
            assert np.allclose(got, expected, rtol=1e-5)

    def test_gaussian_elimination_stays_float64(self, name):
        # The mixed-precision contract narrows storage, never the solve:
        # coupling systems are tiny and near-degenerate, so elimination
        # accumulates in float64 on every in-tree backend — bitwise.
        backend = get_backend(name)
        matrices, rhs = _random_systems()
        got = backend.gaussian_elimination_batch(matrices, rhs)
        assert got.dtype == np.float64
        assert np.array_equal(
            got, reference.gaussian_elimination_batch(matrices, rhs)
        )
        stacked = np.broadcast_to(rhs, got.shape)[..., None]
        assert np.allclose(got, np.linalg.solve(matrices, stacked)[..., 0])

    def test_gaussian_elimination_masks_singular(self, name):
        backend = get_backend(name)
        matrices, rhs = _random_systems(batch=3)
        matrices[1] = 0.0
        solved, singular = backend.gaussian_elimination_batch(
            matrices, rhs, on_singular="mask"
        )
        assert list(singular) == [False, True, False]
        assert np.all(np.isnan(solved[1]))

    def test_reduce_sum_accumulates_float64(self, name):
        backend = get_backend(name)
        values = np.full(10_000, 0.1, dtype=np.float32)
        got = backend.reduce_sum(values)
        assert isinstance(got, float)
        assert got == pytest.approx(1000.0, rel=1e-6)


@pytest.fixture(scope="module")
def blobs():
    x, y = gaussian_blobs(150, 6, 3, seed=2)
    x_test, _ = gaussian_blobs(600, 6, 3, seed=5)
    return x, y, x_test


@pytest.fixture(scope="module")
def fitted64(blobs):
    x, y, _ = blobs
    return GMPSVC(C=5.0, gamma=0.4, working_set_size=32).fit(x, y)


@pytest.fixture(scope="module")
def fitted32(blobs):
    x, y, _ = blobs
    return GMPSVC(
        C=5.0, gamma=0.4, working_set_size=32, backend="numpy32"
    ).fit(x, y)


class TestEndToEndGates:
    def test_numpy64_is_bitwise_the_default(self, blobs, fitted64):
        x, y, x_test = blobs
        explicit = GMPSVC(
            C=5.0, gamma=0.4, working_set_size=32, backend="numpy64"
        ).fit(x, y)
        assert np.array_equal(
            explicit.predict_proba(x_test), fitted64.predict_proba(x_test)
        )
        assert (
            explicit.training_report_.simulated_seconds
            == fitted64.training_report_.simulated_seconds
        )

    def test_numpy32_inference_within_delta_gates(self, blobs, fitted64):
        _, _, x_test = blobs
        model = fitted64.model_
        p_ref, report_ref = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100(), backend="numpy64"),
            model, x_test,
        )
        p_f32, report_f32 = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100(), backend="numpy32"),
            model, x_test,
        )
        assert np.max(np.abs(p_ref - p_f32)) <= 1e-3
        agreement = np.mean(
            np.argmax(p_ref, axis=1) == np.argmax(p_f32, axis=1)
        )
        assert agreement >= 0.999
        # The narrower path is also simulated-cheaper, same workload.
        assert report_f32.simulated_seconds < report_ref.simulated_seconds

    def test_numpy32_end_to_end_argmax_agreement(self, blobs, fitted64, fitted32):
        _, _, x_test = blobs
        labels64 = fitted64.predict(x_test)
        labels32 = fitted32.predict(x_test)
        assert np.mean(labels64 == labels32) >= 0.999

    def test_unknown_backend_names_the_choices(self, blobs):
        # Configs validate eagerly; the estimator follows the sklearn
        # convention (store in __init__, validate at fit).
        with pytest.raises(ValidationError, match="numpy64"):
            PredictorConfig(device=scaled_tesla_p100(), backend="numpy128")
        x, y, _ = blobs
        with pytest.raises(ValidationError, match="numpy64"):
            GMPSVC(backend="numpy128").fit(x, y)

    def test_get_set_params_round_trip(self, fitted32):
        params = fitted32.get_params()
        assert params["backend"] == "numpy32"
        clone = GMPSVC(**params)
        assert clone.get_params()["backend"] == "numpy32"
        est = GMPSVC()
        assert est.set_params(backend="numpy32") is est
        assert est.get_params()["backend"] == "numpy32"


class TestCostModelScaling:
    CHARGE = dict(
        flops=10**9, bytes_read=10**8, bytes_written=10**7, pcie_bytes=10**6
    )

    def test_reference_timeline_is_unscaled(self):
        # backend=None and backend="numpy64" produce the very same charge
        # (the scale factors are exactly 1.0 and skipped entirely).
        default = make_engine(scaled_tesla_p100())
        explicit = make_engine(scaled_tesla_p100(), backend="numpy64")
        assert default.backend is explicit.backend
        assert default.op_charge(**self.CHARGE) == explicit.op_charge(
            **self.CHARGE
        )

    def test_float32_charges_less_time(self):
        e64 = make_engine(scaled_tesla_p100())
        e32 = make_engine(scaled_tesla_p100(), backend="numpy32")
        c64 = e64.op_charge(**self.CHARGE)
        c32 = e32.op_charge(**self.CHARGE)
        assert c32.compute_s == pytest.approx(c64.compute_s / 2)
        # Launch latency is precision-independent.
        assert c32.latency_s == c64.latency_s
        latency_only = dict(flops=0, launches=3)
        assert e32.op_charge(**latency_only) == e64.op_charge(**latency_only)

    def test_counters_record_unscaled_logical_work(self):
        # Counters tally what the algorithm asked for; the precision
        # scales apply to *time*, not to the audit trail.
        e32 = make_engine(scaled_tesla_p100(), backend="numpy32")
        e32.charge("test", **self.CHARGE)
        assert e32.counters.flops == self.CHARGE["flops"]
        assert e32.counters.bytes_read == self.CHARGE["bytes_read"]
        assert e32.counters.pcie_bytes == self.CHARGE["pcie_bytes"]


class TestDeprecationShims:
    def test_sparse_ops_matmul_transpose_shim(self):
        a, b = _random_operands(seed=6)
        with pytest.warns(DeprecationWarning, match="repro.backends"):
            got = mops.matmul_transpose(a, b)
        assert np.array_equal(got, reference.matmul_transpose(a, b))

    def test_linalg_elimination_shim(self):
        from repro.probability import linalg

        matrices, rhs = _random_systems(seed=7)
        with pytest.warns(DeprecationWarning, match="repro.backends"):
            got = linalg.gaussian_elimination_batch(matrices, rhs)
        assert np.array_equal(
            got, reference.gaussian_elimination_batch(matrices, rhs)
        )

    def test_shims_forward_keyword_arguments(self):
        from repro.probability import linalg

        matrices, rhs = _random_systems(seed=8, batch=3)
        matrices[2] = 0.0
        with pytest.warns(DeprecationWarning):
            solved, singular = linalg.gaussian_elimination_batch(
                matrices, rhs, on_singular="mask"
            )
        assert list(singular) == [False, False, True]


class TestPersistenceBackendHeader:
    def _save_text(self, model):
        buffer = io.StringIO()
        save_model(model, buffer)
        return buffer.getvalue()

    def test_header_records_backend_and_dtype(self, fitted64, fitted32):
        assert "backend numpy64 float64\n" in self._save_text(fitted64.model_)
        assert "backend numpy32 float32\n" in self._save_text(fitted32.model_)

    def test_float64_model_round_trips_by_default(self, fitted64):
        text = self._save_text(fitted64.model_)
        model = load_model(io.StringIO(text))
        assert model.metadata == {"backend": "numpy64", "dtype": "float64"}

    def test_float32_model_refuses_silent_reinterpretation(self, fitted32):
        text = self._save_text(fitted32.model_)
        with pytest.raises(ModelFormatError, match="numpy32"):
            load_model(io.StringIO(text))
        with pytest.raises(ModelFormatError, match="float32"):
            load_model(io.StringIO(text), backend="numpy64")

    def test_float32_model_loads_under_matching_backend(self, blobs, fitted32):
        _, _, x_test = blobs
        text = self._save_text(fitted32.model_)
        model = load_model(io.StringIO(text), backend="numpy32")
        assert model.metadata == {"backend": "numpy32", "dtype": "float32"}
        # Any float32 backend qualifies, registered or not.
        loaded = load_model(io.StringIO(text), backend=Numpy32Backend())
        p_direct, _ = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100(), backend="numpy32"),
            fitted32.model_, x_test,
        )
        p_loaded, _ = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100(), backend="numpy32"),
            loaded, x_test,
        )
        # Not bitwise: reloading re-pools the SVs as CSR, and the float32
        # backend routes CSR products through the float64 reference (then
        # casts) while dense pools take the single-SGEMM path.  The two
        # arithmetics agree to float32 rounding, which is the backend's
        # contract.
        assert np.allclose(p_direct, p_loaded, atol=1e-5)

    def test_float64_model_loads_under_any_backend(self, fitted64):
        # Widening is safe: a float64-trained model can run under the
        # float32 fast path (the delta gates cover the precision loss).
        text = self._save_text(fitted64.model_)
        model = load_model(io.StringIO(text), backend="numpy32")
        assert model.metadata["dtype"] == "float64"

    def test_pre_backend_files_load_as_reference(self, fitted64):
        # Files written before the backend header existed were all
        # trained by the float64 reference; dropping the line simulates
        # such a file.
        lines = self._save_text(fitted64.model_).splitlines(keepends=True)
        legacy = "".join(
            line for line in lines if not line.startswith("backend ")
        )
        assert "backend " not in legacy
        model = load_model(io.StringIO(legacy))
        assert model.metadata == {"backend": "numpy64", "dtype": "float64"}
        with pytest.raises(ModelFormatError):
            # The guard never blocks legacy float64 files...
            load_model(io.StringIO("repro-mpsvm 2\n"))
        # ...and widening them is allowed too.
        assert (
            load_model(io.StringIO(legacy), backend="numpy32").metadata["dtype"]
            == "float64"
        )

    def test_malformed_backend_line_rejected(self, fitted64):
        text = self._save_text(fitted64.model_).replace(
            "backend numpy64 float64", "backend numpy64"
        )
        with pytest.raises(ModelFormatError, match="backend"):
            load_model(io.StringIO(text))


class TestPublicSurface:
    def test_registry_names_exported_at_top_level(self):
        assert repro.BackendSpec is BackendSpec
        assert repro.ComputeBackend is ComputeBackend
        assert repro.get_backend is get_backend
        assert repro.list_backends is list_backends
        assert repro.register_backend is register_backend
