"""Unit tests for the six comparison systems."""

import numpy as np
import pytest

from repro import GMPSVC, ValidationError
from repro.baselines import (
    CMPSVMClassifier,
    GPUBaselineClassifier,
    GPUSVMClassifier,
    GTSVMClassifier,
    LibSVMClassifier,
    OHDSVMClassifier,
)
from repro.data import binary01_features, gaussian_blobs


@pytest.fixture(scope="module")
def multiclass_problem():
    return gaussian_blobs(150, 5, 3, seed=6)


@pytest.fixture(scope="module")
def binary_problem_data():
    x, y = gaussian_blobs(120, 5, 2, seed=7)
    return x, np.where(y == 0, -1, 1)


@pytest.fixture(scope="module")
def gmp_reference(multiclass_problem):
    x, y = multiclass_problem
    return GMPSVC(C=10.0, gamma=0.4, working_set_size=32).fit(x, y)


class TestClassifierEquivalence:
    """Table 4: every system must learn the same classifier."""

    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (LibSVMClassifier, {}),
            (LibSVMClassifier, {"openmp": True}),
            (GPUBaselineClassifier, {}),
            (CMPSVMClassifier, {"working_set_size": 32}),
        ],
    )
    def test_same_biases_as_gmp(self, multiclass_problem, gmp_reference, cls, kwargs):
        x, y = multiclass_problem
        clf = cls(C=10.0, gamma=0.4, **kwargs).fit(x, y)
        for theirs, ours in zip(clf.model_.records, gmp_reference.model_.records):
            assert theirs.bias == pytest.approx(ours.bias, abs=5e-3)
            assert theirs.objective == pytest.approx(ours.objective, rel=1e-4)

    def test_same_decision_predictions_as_gmp(self, multiclass_problem, gmp_reference):
        x, y = multiclass_problem
        libsvm = LibSVMClassifier(C=10.0, gamma=0.4).fit(x, y)
        from repro.core.predictor import PredictorConfig, predict_labels_model

        ours, _ = predict_labels_model(
            gmp_reference._predictor_config(), gmp_reference.model_, x,
            use_probability=False,
        )
        theirs, _ = predict_labels_model(
            libsvm._predictor_config(), libsvm.model_, x, use_probability=False
        )
        assert np.array_equal(ours, theirs)


class TestPerformanceShape:
    """Who wins, by roughly what factor (the paper's headline ratios)."""

    def test_gmp_fastest_overall(self, multiclass_problem, gmp_reference):
        x, y = multiclass_problem
        gmp_time = gmp_reference.training_report_.simulated_seconds
        for cls, kwargs in [
            (GPUBaselineClassifier, {}),
            (CMPSVMClassifier, {"working_set_size": 32}),
            (LibSVMClassifier, {"openmp": True}),
            (LibSVMClassifier, {}),
        ]:
            clf = cls(C=10.0, gamma=0.4, **kwargs).fit(x, y)
            assert clf.training_report_.simulated_seconds > gmp_time

    def test_openmp_speeds_up_libsvm(self, multiclass_problem):
        x, y = multiclass_problem
        single = LibSVMClassifier(C=10.0, gamma=0.4).fit(x, y)
        openmp = LibSVMClassifier(C=10.0, gamma=0.4, openmp=True).fit(x, y)
        ratio = (
            single.training_report_.simulated_seconds
            / openmp.training_report_.simulated_seconds
        )
        assert 3.0 < ratio < 12.0  # paper: ~4-10x from OpenMP

    def test_gmp_beats_gpu_baseline_on_prediction_multiclass(
        self, multiclass_problem, gmp_reference
    ):
        x, y = multiclass_problem
        baseline = GPUBaselineClassifier(C=10.0, gamma=0.4).fit(x, y)
        baseline.predict_proba(x)
        gmp_reference.predict_proba(x)
        assert (
            baseline.prediction_report_.simulated_seconds
            > gmp_reference.prediction_report_.simulated_seconds
        )


class TestGTSVM:
    def test_trains_multiclass_without_probability(self, multiclass_problem):
        x, y = multiclass_problem
        clf = GTSVMClassifier(C=10.0, gamma=0.4).fit(x, y)
        assert clf.score(x, y) > 0.9
        with pytest.raises(ValidationError, match="probability"):
            clf.predict_proba(x)

    def test_slower_than_gmp(self, multiclass_problem, gmp_reference):
        x, y = multiclass_problem
        clf = GTSVMClassifier(C=10.0, gamma=0.4).fit(x, y)
        ratio = (
            clf.training_report_.simulated_seconds
            / gmp_reference.training_report_.simulated_seconds
        )
        assert ratio > 1.5  # paper: "often by about five times"


class TestOHDSVM:
    def test_binary_only(self, multiclass_problem):
        x, y = multiclass_problem
        with pytest.raises(ValidationError, match="binary"):
            OHDSVMClassifier().fit(x, y)

    def test_trains_binary(self, binary_problem_data):
        x, y = binary_problem_data
        clf = OHDSVMClassifier(C=10.0, gamma=0.4).fit(x, y)
        assert clf.score(x, y) > 0.9
        with pytest.raises(ValidationError):
            clf.predict_proba(x)

    def test_slower_than_gmp_binary_at_registry_scale(self):
        # At toy sizes OHD's wholesale replacement is harmless (everything
        # fits in one working set), so the comparison uses a registry-scale
        # dataset, as Figure 9 does.
        from repro.data import load_dataset

        ds = load_dataset("adult")
        gmp = GMPSVC(C=ds.spec.penalty, gamma=ds.spec.gamma).fit(
            ds.x_train, ds.y_train
        )
        ohd = OHDSVMClassifier(C=ds.spec.penalty, gamma=ds.spec.gamma).fit(
            ds.x_train, ds.y_train
        )
        assert (
            ohd.training_report_.simulated_seconds
            > gmp.training_report_.simulated_seconds
        )


class TestGPUSVM:
    def test_binary_only(self, multiclass_problem):
        x, y = multiclass_problem
        with pytest.raises(ValidationError, match="binary"):
            GPUSVMClassifier().fit(x, y)

    def test_no_probability(self, binary_problem_data):
        x, y = binary_problem_data
        clf = GPUSVMClassifier(C=10.0, gamma=0.4).fit(x, y)
        with pytest.raises(ValidationError):
            clf.predict_proba(x)

    def test_dense_representation_penalised_on_sparse_data(self):
        """Figure 10: GPUSVM collapses where data is sparse."""
        x, y = binary01_features(150, 200, 2, active_per_row=8, seed=8)
        labels = np.where(y == 0, -1, 1)
        gmp = GMPSVC(C=10.0, gamma=0.5, working_set_size=32).fit(x, labels)
        gpusvm = GPUSVMClassifier(C=10.0, gamma=0.5).fit(x, labels)
        ratio = (
            gpusvm.training_report_.simulated_seconds
            / gmp.training_report_.simulated_seconds
        )
        assert ratio > 5.0

    def test_same_classifier_despite_dense_storage(self, binary_problem_data):
        x, y = binary_problem_data
        gmp = GMPSVC(C=10.0, gamma=0.4, working_set_size=32).fit(x, y)
        gpusvm = GPUSVMClassifier(C=10.0, gamma=0.4).fit(x, y)
        assert gpusvm.model_.records[0].bias == pytest.approx(
            gmp.model_.records[0].bias, abs=5e-3
        )
