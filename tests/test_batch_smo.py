"""Unit tests for the GMP-SVM batched working-set solver."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.gpusim import make_engine, scaled_tesla_p100
from repro.kernels import GaussianKernel, KernelRowComputer
from repro.solvers import BatchSMOSolver, ClassicSMOSolver

from tests.conftest import make_binary_problem


def solve_batched(x, y, penalty=10.0, **kwargs):
    engine = make_engine(scaled_tesla_p100())
    rows = KernelRowComputer(engine, GaussianKernel(gamma=0.25), x)
    result = BatchSMOSolver(penalty=penalty, **kwargs).solve(rows, y)
    return result, engine


def solve_classic(x, y, penalty=10.0):
    engine = make_engine(scaled_tesla_p100())
    rows = KernelRowComputer(engine, GaussianKernel(gamma=0.25), x)
    return ClassicSMOSolver(penalty=penalty).solve(rows, y)


class TestEquivalenceWithClassicSMO:
    """The paper's Table 4 claim: same classifier as LibSVM."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_same_objective_and_bias(self, seed):
        x, y = make_binary_problem(n=150, separation=1.0, seed=seed)
        classic = solve_classic(x, y)
        batched, _ = solve_batched(x, y, working_set_size=64)
        assert batched.objective == pytest.approx(classic.objective, rel=1e-4)
        assert batched.bias == pytest.approx(classic.bias, abs=5e-3)

    def test_same_predictions(self):
        x, y = make_binary_problem(n=150, separation=0.8, seed=5)
        classic = solve_classic(x, y)
        batched, engine = solve_batched(x, y, working_set_size=64)
        rows = KernelRowComputer(engine, GaussianKernel(0.25), x)
        gram = rows.kernel.pairwise(engine, x, x, category="k")
        v_classic = (classic.alpha * y) @ gram + classic.bias
        v_batched = (batched.alpha * y) @ gram + batched.bias
        assert np.mean(np.sign(v_classic) == np.sign(v_batched)) == 1.0

    def test_kkt_conditions_hold(self):
        x, y = make_binary_problem(n=150, separation=0.8, seed=7)
        result, engine = solve_batched(x, y, working_set_size=64)
        gram = GaussianKernel(0.25).pairwise(engine, x, x, category="k")
        f = (result.alpha * y) @ gram - y
        up = ((y > 0) & (result.alpha < 10.0)) | ((y < 0) & (result.alpha > 0))
        low = ((y > 0) & (result.alpha > 0)) | ((y < 0) & (result.alpha < 10.0))
        assert f[low].max() - f[up].min() <= 1e-3

    def test_constraints_hold(self):
        x, y = make_binary_problem(n=120)
        result, _ = solve_batched(x, y, penalty=3.0, working_set_size=32)
        assert abs(np.dot(result.alpha, y)) < 1e-9
        assert result.alpha.min() >= 0 and result.alpha.max() <= 3.0 + 1e-12


class TestGeometry:
    def test_working_set_clamped_to_problem_size(self):
        x, y = make_binary_problem(n=40)
        result, _ = solve_batched(x, y, working_set_size=1024)
        assert result.diagnostics["working_set_size"] <= 40

    def test_q_defaults_to_half_working_set(self):
        x, y = make_binary_problem(n=200)
        result, _ = solve_batched(x, y, working_set_size=64)
        assert result.diagnostics["new_per_round"] == 32

    def test_explicit_q(self):
        x, y = make_binary_problem(n=200)
        result, _ = solve_batched(x, y, working_set_size=64, new_per_round=16)
        assert result.diagnostics["new_per_round"] == 16

    def test_full_replacement_mode(self):
        """OHD-style q == ws: converges, with no retained half."""
        x, y = make_binary_problem(n=150)
        result, _ = solve_batched(
            x, y, working_set_size=64, new_per_round=64, inner_rule="fixed"
        )
        assert result.converged

    def test_buffer_smaller_than_ws_shrinks_ws(self):
        x, y = make_binary_problem(n=200)
        result, _ = solve_batched(x, y, working_set_size=128, buffer_rows=32)
        assert result.diagnostics["working_set_size"] <= 32

    def test_bad_parameters(self):
        with pytest.raises(ValidationError):
            BatchSMOSolver(penalty=1.0, epsilon=0.0)
        with pytest.raises(ValidationError):
            BatchSMOSolver(penalty=1.0, working_set_size=1)


class TestBufferBehaviour:
    def test_buffer_reuse_happens(self):
        x, y = make_binary_problem(n=200, separation=0.8)
        result, _ = solve_batched(x, y, working_set_size=64)
        assert result.buffer_hit_rate > 0.2  # retained half hits

    def test_larger_buffer_reuses_more(self):
        x, y = make_binary_problem(n=300, separation=0.6, seed=8)
        small, _ = solve_batched(x, y, working_set_size=32, buffer_rows=32)
        large, _ = solve_batched(
            x, y, working_set_size=32, buffer_rows=256
        )
        assert large.buffer_hit_rate >= small.buffer_hit_rate

    @pytest.mark.parametrize("policy", ["fifo", "lru", "lfu"])
    def test_all_policies_converge_to_same_solution(self, policy):
        x, y = make_binary_problem(n=150, seed=4)
        result, _ = solve_batched(x, y, working_set_size=48, buffer_policy=policy)
        classic = solve_classic(x, y)
        assert result.objective == pytest.approx(classic.objective, rel=1e-4)


class TestInnerRules:
    @pytest.mark.parametrize("rule", ["adaptive", "fixed", "to_convergence"])
    def test_rules_reach_the_optimum(self, rule):
        x, y = make_binary_problem(n=120, seed=6)
        result, _ = solve_batched(x, y, working_set_size=48, inner_rule=rule)
        classic = solve_classic(x, y)
        assert result.converged
        assert result.objective == pytest.approx(classic.objective, rel=1e-4)

    def test_adaptive_uses_fewer_inner_iterations_than_to_convergence(self):
        x, y = make_binary_problem(n=200, separation=0.6, seed=2)
        adaptive, _ = solve_batched(x, y, working_set_size=64, inner_rule="adaptive")
        exhaustive, _ = solve_batched(
            x, y, working_set_size=64, inner_rule="to_convergence"
        )
        assert adaptive.iterations <= exhaustive.iterations


class TestRobustness:
    def test_two_instances(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([-1.0, 1.0])
        result, _ = solve_batched(x, y, penalty=1.0, working_set_size=16)
        assert result.converged

    def test_round_cap_stops(self):
        x, y = make_binary_problem(n=200, separation=0.3)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result, _ = solve_batched(x, y, working_set_size=32, max_rounds=2)
        assert result.rounds <= 2

    def test_result_f_is_consistent(self):
        """The returned indicators must satisfy Eq. 3 at the final alpha."""
        x, y = make_binary_problem(n=100, seed=11)
        result, engine = solve_batched(x, y, working_set_size=32)
        gram = GaussianKernel(0.25).pairwise(engine, x, x, category="k")
        expected_f = (result.alpha * y) @ gram - y
        assert np.allclose(result.f, expected_f, atol=1e-8)


from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    seed=st.integers(0, 10_000),
    penalty=st.sampled_from([0.5, 5.0, 50.0]),
    ws=st.sampled_from([16, 48]),
)
@settings(max_examples=15, deadline=None)
def test_batched_solver_kkt_property(seed, penalty, ws):
    """On random problems the batched solver always reaches Eq. 9."""
    x, y = make_binary_problem(n=120, separation=0.8, seed=seed)
    engine = make_engine(scaled_tesla_p100())
    rows = KernelRowComputer(engine, GaussianKernel(0.25), x)
    result = BatchSMOSolver(penalty=penalty, working_set_size=ws).solve(rows, y)
    assert result.converged
    gram = GaussianKernel(0.25).pairwise(engine, x, x, category="k")
    f = (result.alpha * y) @ gram - y
    up = ((y > 0) & (result.alpha < penalty)) | ((y < 0) & (result.alpha > 0))
    low = ((y > 0) & (result.alpha > 0)) | ((y < 0) & (result.alpha < penalty))
    assert f[low].max() - f[up].min() <= 1e-3
    assert abs(result.alpha @ y) < 1e-9
    assert result.alpha.min() >= 0 and result.alpha.max() <= penalty + 1e-12
