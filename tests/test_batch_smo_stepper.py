"""Property tests for the resumable batched-SMO stepper.

The interleaved trainer relies on :class:`BatchSMOSession` stepping a
solver round-by-round without changing a single bit of the trajectory
that :meth:`BatchSMOSolver.solve` produces.  These tests drive sessions
by hand and compare them against the monolithic path, and pin the KKT
contract of every termination exit: a round is only opened while the
global violation ``delta = f_l - f_u`` exceeds epsilon, deltas shrink
to the tolerance, and a converged exit leaves a gap within epsilon.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.gpusim import make_engine, scaled_tesla_p100
from repro.kernels import GaussianKernel, KernelRowComputer
from repro.solvers import BatchSMOSolver
from repro.solvers.base import optimality_gap

from tests.conftest import make_binary_problem


def fresh_rows(x):
    engine = make_engine(scaled_tesla_p100())
    return KernelRowComputer(engine, GaussianKernel(gamma=0.25), x)


def make_solver(**kwargs):
    kwargs.setdefault("penalty", 10.0)
    kwargs.setdefault("working_set_size", 16)
    return BatchSMOSolver(**kwargs)


class TestSteppedEqualsMonolithic:
    """Driving rounds by hand reproduces ``solve`` bitwise."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_final_state_is_bitwise_identical(self, seed):
        x, y = make_binary_problem(n=140, separation=1.0, seed=seed)
        solver = make_solver(record_rounds=True)

        monolithic = solver.solve(fresh_rows(x), y)

        session = solver.start(fresh_rows(x), y)
        while session.begin_round() is not None:
            session.complete_round()
        stepped = session.finish()

        assert np.array_equal(stepped.alpha, monolithic.alpha)
        assert np.array_equal(stepped.f, monolithic.f)
        assert stepped.bias == monolithic.bias
        assert stepped.objective == monolithic.objective
        assert stepped.rounds == monolithic.rounds
        assert stepped.iterations == monolithic.iterations
        assert stepped.converged == monolithic.converged

    @pytest.mark.parametrize("seed", [2, 5])
    def test_round_traces_are_identical(self, seed):
        """The per-round objective/iterate trace matches round for round."""
        x, y = make_binary_problem(n=120, separation=0.9, seed=seed)
        solver = make_solver(record_rounds=True)

        monolithic = solver.solve(fresh_rows(x), y)

        session = solver.start(fresh_rows(x), y)
        while session.begin_round() is not None:
            session.complete_round()
        stepped = session.finish()

        assert monolithic.round_trace is not None
        assert len(stepped.round_trace) == len(monolithic.round_trace)
        for mine, theirs in zip(stepped.round_trace, monolithic.round_trace):
            assert mine == theirs  # includes bitwise-equal delta floats

    def test_custom_loader_with_identical_values_changes_nothing(self):
        """A wave-fused loader is only legal because values are identical;
        feeding the same values through an external loader must reproduce
        the default path bitwise."""
        x, y = make_binary_problem(n=100, seed=9)
        solver = make_solver()

        reference = solver.solve(fresh_rows(x), y)

        rows = fresh_rows(x)
        shadow = fresh_rows(x)  # independent provider of identical values
        session = solver.start(rows, y)
        calls = []
        while session.begin_round() is not None:
            session.complete_round(
                loader=lambda ids: (calls.append(len(ids)), shadow.rows(ids))[1]
            )
        result = session.finish()

        assert np.array_equal(result.alpha, reference.alpha)
        assert result.bias == reference.bias
        assert len(calls) <= result.rounds  # at most one fetch per round


class TestKKTContract:
    """Every exit of the early-terminating round loop respects epsilon."""

    @pytest.mark.parametrize("seed", [1, 3, 7])
    def test_rounds_open_only_above_epsilon(self, seed):
        x, y = make_binary_problem(n=130, separation=1.1, seed=seed)
        solver = make_solver()
        session = solver.start(fresh_rows(x), y)
        deltas = []
        while (request := session.begin_round()) is not None:
            assert request.delta > solver.epsilon
            deltas.append(request.delta)
            session.complete_round()
        result = session.finish()
        assert deltas, "expected at least one round"
        # The violation must shrink to the tolerance overall even though
        # single rounds may bounce (working-set locality).
        assert min(deltas) < deltas[0] or len(deltas) == 1
        if result.converged:
            assert result.final_gap <= solver.epsilon

    @pytest.mark.parametrize("seed", [1, 2, 4, 8])
    def test_converged_exit_satisfies_global_kkt(self, seed):
        x, y = make_binary_problem(n=120, seed=seed)
        solver = make_solver()
        session = solver.start(fresh_rows(x), y)
        while session.begin_round() is not None:
            session.complete_round()
        result = session.finish()
        assert result.converged
        gap = optimality_gap(
            result.f, np.where(y > 0, 1.0, -1.0), result.alpha,
            np.full(y.size, solver.penalty),
        )
        assert gap <= solver.epsilon

    def test_round_cap_exit_warns_and_reports_gap(self):
        x, y = make_binary_problem(n=140, separation=0.3, seed=6)
        solver = make_solver(max_rounds=2)
        session = solver.start(fresh_rows(x), y)
        while session.begin_round() is not None:
            session.complete_round()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = session.finish()
        assert not result.converged
        assert result.rounds <= 2
        assert any("batched SMO stopped" in str(w.message) for w in caught)
        assert result.final_gap > solver.epsilon


class TestSessionProtocol:
    """The stepper's state machine rejects out-of-order driving."""

    def _session(self):
        x, y = make_binary_problem(n=60, seed=2)
        return make_solver().start(fresh_rows(x), y)

    def test_begin_twice_without_complete_rejected(self):
        session = self._session()
        assert session.begin_round() is not None
        with pytest.raises(ValidationError, match="in flight"):
            session.begin_round()
        session.close()

    def test_complete_without_begin_rejected(self):
        session = self._session()
        with pytest.raises(ValidationError, match="without begin_round"):
            session.complete_round()
        session.close()

    def test_done_tracks_termination_and_none_is_sticky(self):
        session = self._session()
        assert not session.done
        while session.begin_round() is not None:
            session.complete_round()
        assert session.done
        assert session.begin_round() is None  # terminal state is absorbing
        session.finish()

    def test_finish_is_idempotent(self):
        session = self._session()
        while session.begin_round() is not None:
            session.complete_round()
        first = session.finish()
        assert session.finish() is first

    def test_request_marks_missing_rows_without_charging(self):
        session = self._session()
        request = session.begin_round()
        # First round: nothing is resident, so the whole working set is
        # missing, and probing must not have touched buffer statistics.
        assert np.array_equal(np.sort(request.missing), np.sort(request.ws_idx))
        assert session.buffer.stats.requests == 0
        session.complete_round()
        assert session.buffer.stats.requests > 0
        session.close()

    def test_solve_is_a_session_loop(self):
        """The monolithic entry point and a fresh session share state types."""
        x, y = make_binary_problem(n=60, seed=2)
        solver = make_solver()
        result = solver.solve(fresh_rows(x), y)
        session = solver.start(fresh_rows(x), y)
        while session.begin_round() is not None:
            session.complete_round()
        assert session.finish().objective == result.objective
