"""Parity and bugfix tests for the batched prediction-side probability math.

The batched paths (``gaussian_elimination_batch``, the vectorized
``couple_batch``, the broadcast sigmoid in the predictor) must reproduce
the per-instance implementations to float64 round-off; these tests pin
that, plus the prediction-path bugfixes that rode along (batch-size
validation, OvA degenerate rows, truthful sigmoid convergence, charged
ridge retries).
"""

import warnings

import numpy as np
import pytest

from repro.core import predictor as predictor_mod
from repro.core.predictor import PredictorConfig, _resolve_batch
from repro.exceptions import ConvergenceWarning, SolverError, ValidationError
from repro.gpusim import make_engine, scaled_tesla_p100
from repro.gpusim.counters import OpCounters
from repro.probability import (
    SigmoidModel,
    couple_batch,
    couple_probabilities,
    fit_sigmoid,
    gaussian_elimination,
    gaussian_elimination_batch,
    pairwise_matrix_from_estimates,
    sigmoid_predict,
)
from repro.probability.pairwise import RIDGE_RETRY_EVENT

PARITY_ATOL = 1e-12


def fresh_engine():
    return make_engine(scaled_tesla_p100())


def random_r_batch(rng, m, k, low=0.05, high=0.95):
    upper_s, upper_t = np.triu_indices(k, 1)
    batch = np.full((m, k, k), 0.5)
    values = rng.uniform(low, high, size=(m, upper_s.size))
    batch[:, upper_s, upper_t] = values
    batch[:, upper_t, upper_s] = 1.0 - values
    return batch


class TestBatchedElimination:
    def test_matches_scalar_bitwise(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 11))
            m = int(rng.integers(1, 8))
            a = rng.normal(size=(m, n, n)) + n * np.eye(n)
            b = rng.normal(size=(m, n))
            x = gaussian_elimination_batch(a, b)
            for i in range(m):
                assert np.array_equal(x[i], gaussian_elimination(a[i], b[i]))

    def test_shared_rhs_broadcasts(self, rng):
        a = rng.normal(size=(4, 3, 3)) + 3 * np.eye(3)
        ones = np.ones(3)
        x = gaussian_elimination_batch(a, ones)
        stacked = gaussian_elimination_batch(a, np.tile(ones, (4, 1)))
        assert np.array_equal(x, stacked)

    def test_empty_batch(self):
        x = gaussian_elimination_batch(np.empty((0, 4, 4)), np.ones(4))
        assert x.shape == (0, 4)
        x, singular = gaussian_elimination_batch(
            np.empty((0, 4, 4)), np.ones(4), on_singular="mask"
        )
        assert x.shape == (0, 4) and singular.shape == (0,)

    def test_singular_raise_names_batch_index(self):
        a = np.stack([np.eye(2), np.array([[1.0, 2.0], [2.0, 4.0]])])
        with pytest.raises(SolverError, match="batch index 1"):
            gaussian_elimination_batch(a, np.ones(2))

    def test_singular_mask_flags_only_bad_systems(self):
        a = np.stack([np.eye(3), np.ones((3, 3)), 2.0 * np.eye(3)])
        x, singular = gaussian_elimination_batch(
            a, np.ones(3), on_singular="mask"
        )
        assert singular.tolist() == [False, True, False]
        assert np.all(np.isnan(x[1]))
        assert np.array_equal(x[0], np.ones(3))
        assert np.array_equal(x[2], np.full(3, 0.5))

    def test_pivoting_within_batch(self):
        a = np.array([[[0.0, 1.0], [1.0, 0.0]]])
        x = gaussian_elimination_batch(a, np.array([[2.0, 3.0]]))
        assert np.allclose(x[0], [3.0, 2.0])

    def test_shape_and_mode_validation(self):
        with pytest.raises(ValidationError):
            gaussian_elimination_batch(np.ones((2, 3, 4)), np.ones(3))
        with pytest.raises(ValidationError):
            gaussian_elimination_batch(np.ones((2, 3, 3)), np.ones((2, 4)))
        with pytest.raises(ValidationError):
            gaussian_elimination_batch(
                np.ones((1, 2, 2)), np.ones(2), on_singular="ignore"
            )

    def test_does_not_mutate_inputs(self, rng):
        a = rng.normal(size=(2, 3, 3)) + 3 * np.eye(3)
        b = rng.normal(size=(2, 3))
        a_copy, b_copy = a.copy(), b.copy()
        gaussian_elimination_batch(a, b)
        assert np.array_equal(a, a_copy) and np.array_equal(b, b_copy)


class TestCoupleBatchParity:
    def test_random_batches_match_per_instance(self, rng):
        for k in (2, 3, 5, 10):
            batch = random_r_batch(rng, 25, k)
            coupled = couple_batch(fresh_engine(), batch)
            engine = fresh_engine()
            for i in range(batch.shape[0]):
                single = couple_probabilities(engine, batch[i])
                assert np.allclose(coupled[i], single, atol=PARITY_ATOL)

    def test_near_degenerate_batches_match(self, rng):
        # r barely off 0.5 everywhere: Q is nearly rank-deficient, which
        # stresses the pivot-tolerance/ridge boundary on both paths.
        for k in (2, 3, 6):
            batch = random_r_batch(
                rng, 10, k, low=0.5 - 1e-9, high=0.5 + 1e-9
            )
            coupled = couple_batch(fresh_engine(), batch)
            engine = fresh_engine()
            for i in range(batch.shape[0]):
                single = couple_probabilities(engine, batch[i])
                assert np.allclose(coupled[i], single, atol=PARITY_ATOL)
            assert np.allclose(coupled, 1.0 / k, atol=1e-6)

    def test_k2_matches_local_estimate(self):
        batch = random_r_batch(np.random.default_rng(0), 8, 2)
        coupled = couple_batch(fresh_engine(), batch)
        assert np.allclose(coupled[:, 0], batch[:, 0, 1], atol=1e-6)

    def test_empty_batch(self):
        coupled = couple_batch(fresh_engine(), np.empty((0, 4, 4)))
        assert coupled.shape == (0, 4)

    def test_iterative_method_still_maps(self, rng):
        batch = random_r_batch(rng, 3, 3)
        vec = couple_batch(fresh_engine(), batch, method="iterative")
        engine = fresh_engine()
        for i in range(3):
            single = couple_probabilities(engine, batch[i], method="iterative")
            assert np.allclose(vec[i], single, atol=PARITY_ATOL)

    def test_validation(self):
        with pytest.raises(ValidationError):
            couple_batch(fresh_engine(), np.ones((2, 3, 4)))
        with pytest.raises(ValidationError):
            couple_batch(fresh_engine(), np.full((2, 1, 1), 0.5))
        with pytest.raises(ValidationError):
            couple_batch(fresh_engine(), np.full((2, 3, 3), 0.5), method="magic")

    def test_single_launch_charged_for_clean_batch(self, rng):
        engine = fresh_engine()
        couple_batch(engine, random_r_batch(rng, 50, 4))
        assert engine.counters.kernel_launches == 1
        assert engine.counters.events == {}


class TestRidgeRetryAccounting:
    def test_scalar_retries_are_charged_and_tallied(self):
        # Uniform r at k=2 gives an exactly singular Q: one clean solve
        # attempt plus one charged ridge retry.
        engine = fresh_engine()
        r = pairwise_matrix_from_estimates({(0, 1): 0.5}, 2)
        p = couple_probabilities(engine, r)
        assert np.allclose(p, 0.5)
        assert engine.counters.events[RIDGE_RETRY_EVENT] == 1
        assert engine.counters.kernel_launches == 2

    def test_batch_retries_only_singular_instances(self, rng):
        engine = fresh_engine()
        batch = random_r_batch(rng, 6, 3)
        batch[2] = 0.5  # uniform r gives a singular Q for instance 2 only
        batch[4] = 0.5
        coupled = couple_batch(engine, batch)
        assert np.allclose(coupled[2], 1.0 / 3.0)
        assert np.allclose(coupled[4], 1.0 / 3.0)
        assert engine.counters.events[RIDGE_RETRY_EVENT] == 2
        # One batched launch + one charged retry per singular instance.
        assert engine.counters.kernel_launches == 3
        loop_engine = fresh_engine()
        for i in range(batch.shape[0]):
            single = couple_probabilities(loop_engine, batch[i])
            assert np.allclose(coupled[i], single, atol=PARITY_ATOL)

    def test_event_counters_merge_snapshot_since_reset(self):
        counters = OpCounters()
        counters.count_event("coupling_ridge_retries", 2)
        snap = counters.snapshot()
        counters.count_event("coupling_ridge_retries")
        counters.count_event("other", 5)
        delta = counters.since(snap)
        assert delta.events == {"coupling_ridge_retries": 1, "other": 5}
        merged = OpCounters()
        merged.merge(counters)
        assert merged.events == counters.events
        counters.reset()
        assert counters.events == {}
        with pytest.raises(ValueError):
            counters.count_event("bad", -1)


class _StubModel:
    """Just enough of MPSVMModel for the predictor's probability helpers."""

    def __init__(self, records, n_classes, strategy="ovo"):
        self.records = records
        self.n_classes = n_classes
        self.strategy = strategy
        self._sigmoid_params = None
        self._pair_positions = None

    sigmoid_params = predictor_mod.MPSVMModel.sigmoid_params
    pair_positions = predictor_mod.MPSVMModel.pair_positions


class _Record:
    def __init__(self, s, t, sigmoid):
        self.s = s
        self.t = t
        self.sigmoid = sigmoid


def _pairwise_reference(model, decisions):
    """The pre-batching per-pair loop, kept as the parity oracle."""
    m = decisions.shape[0]
    k = model.n_classes
    r = np.full((m, k, k), 0.5)
    for column, record in enumerate(model.records):
        p = sigmoid_predict(
            decisions[:, column], record.sigmoid.a, record.sigmoid.b
        )
        r[:, record.s, record.t] = p
        r[:, record.t, record.s] = 1.0 - p
    return r


class TestPredictorBatching:
    def _ovo_model(self, rng, k):
        records = [
            _Record(
                s,
                t,
                SigmoidModel(
                    a=float(rng.normal(-2.0, 0.5)), b=float(rng.normal())
                ),
            )
            for s in range(k)
            for t in range(s + 1, k)
        ]
        return _StubModel(records, k)

    def test_pairwise_estimates_match_per_pair_loop(self, rng):
        for k in (2, 3, 6):
            model = self._ovo_model(rng, k)
            decisions = rng.normal(size=(17, len(model.records)))
            batched = predictor_mod._pairwise_estimates(
                fresh_engine(), model, decisions
            )
            assert np.allclose(
                batched, _pairwise_reference(model, decisions), atol=PARITY_ATOL
            )

    def test_pairwise_estimates_single_launch(self, rng):
        model = self._ovo_model(rng, 4)
        engine = fresh_engine()
        predictor_mod._pairwise_estimates(
            engine, model, rng.normal(size=(9, len(model.records)))
        )
        assert engine.counters.kernel_launches == 1

    def test_missing_sigmoid_raises(self, rng):
        model = self._ovo_model(rng, 3)
        model.records[1].sigmoid = None
        with pytest.raises(ValidationError, match=r"\(0,2\) has no sigmoid"):
            predictor_mod._pairwise_estimates(
                fresh_engine(), model, rng.normal(size=(2, 3))
            )

    def _ova_model(self, rng, k, a=-2.0):
        records = [
            _Record(s, -1, SigmoidModel(a=a, b=float(rng.normal())))
            for s in range(k)
        ]
        return _StubModel(records, k, strategy="ova")

    def test_ova_probabilities_match_per_class_loop(self, rng):
        k = 4
        model = self._ova_model(rng, k)
        decisions = rng.normal(size=(13, k))
        batched = predictor_mod._ova_probabilities(
            fresh_engine(), model, decisions
        )
        raw = np.empty((13, k))
        for column, record in enumerate(model.records):
            raw[:, record.s] = sigmoid_predict(
                decisions[:, column], record.sigmoid.a, record.sigmoid.b
            )
        assert np.allclose(
            batched, raw / raw.sum(axis=1, keepdims=True), atol=PARITY_ATOL
        )
        assert np.allclose(batched.sum(axis=1), 1.0)

    def test_ova_degenerate_row_falls_back_to_uniform(self, rng):
        # A huge positive A drives every sigmoid to exactly 0 for large
        # decision values; such a row must become uniform, not all-zero.
        k = 3
        model = self._ova_model(rng, k, a=1e4)
        decisions = np.full((2, k), 1.0)
        decisions[1] = 1e-6  # second row stays non-degenerate
        probabilities = predictor_mod._ova_probabilities(
            fresh_engine(), model, decisions
        )
        assert np.allclose(probabilities[0], 1.0 / k)
        assert probabilities.sum(axis=1) == pytest.approx([1.0, 1.0])


class TestResolveBatchValidation:
    def _config(self, batch_size):
        return PredictorConfig(device=scaled_tesla_p100(), batch_size=batch_size)

    def test_zero_batch_size_rejected(self):
        with pytest.raises(ValidationError, match="batch_size"):
            _resolve_batch(self._config(0), None, 10)

    def test_negative_batch_size_rejected(self):
        with pytest.raises(ValidationError, match="batch_size"):
            _resolve_batch(self._config(-4), None, 10)

    def test_positive_batch_size_passes_through(self):
        assert _resolve_batch(self._config(7), None, 10) == 7


class TestSigmoidConvergenceReporting:
    def _data(self, rng, n=40):
        values = rng.normal(size=n)
        labels = np.where(values + 0.3 * rng.normal(size=n) > 0, 1.0, -1.0)
        return values, labels

    def test_zero_iterations_reports_not_converged(self, gpu_engine, rng):
        values, labels = self._data(rng)
        model = fit_sigmoid(gpu_engine, values, labels, max_iterations=0)
        assert model.converged is False
        assert model.iterations == 0

    def test_negative_iterations_rejected(self, gpu_engine, rng):
        values, labels = self._data(rng)
        with pytest.raises(ValidationError, match="max_iterations"):
            fit_sigmoid(gpu_engine, values, labels, max_iterations=-1)

    def test_iteration_cap_warns_and_reports_not_converged(
        self, gpu_engine, rng
    ):
        values, labels = self._data(rng)
        with pytest.warns(ConvergenceWarning, match="iteration"):
            model = fit_sigmoid(gpu_engine, values, labels, max_iterations=1)
        assert model.converged is False

    def test_line_search_failure_warns(self, gpu_engine, rng, monkeypatch):
        from repro.probability import platt

        values, labels = self._data(rng)
        monkeypatch.setattr(platt, "_line_search", lambda *a, **k: None)
        with pytest.warns(ConvergenceWarning, match="line search"):
            model = fit_sigmoid(gpu_engine, values, labels)
        assert model.converged is False

    def test_successful_fit_is_quiet_and_converged(self, gpu_engine, rng):
        values, labels = self._data(rng)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ConvergenceWarning)
            model = fit_sigmoid(gpu_engine, values, labels)
        assert model.converged is True
