"""Tests for repro.cascade: instance-sharded cascade SMO.

The cascade merge is approximate, so unlike the pair-sharded path there
is no bitwise-parity guarantee against the sequential solve.  The
load-bearing contract is the *error budget*: the final full-KKT pass
must verify a global dual gap at or below the configured ceiling, the
decision values must track the sequential solve closely, and the sign
agreement (which drives multiclass voting) must be essentially perfect.
Routing, on the other hand, must be surgical — pairs below the
threshold keep the bitwise path, and a config that routes nothing must
leave the trained model bitwise identical.
"""

import json
import warnings

import numpy as np
import pytest

from repro.cascade import (
    CascadeConfig,
    assign_shards,
    build_reduction_tree,
    effective_shards,
    shard_instances,
    train_cascade,
)
from repro.core.trainer import TrainerConfig, train_multiclass
from repro.data import gaussian_blobs
from repro.distributed import ClusterSpec, train_multiclass_sharded
from repro.exceptions import ValidationError
from repro.gpusim.device import scaled_tesla_p100
from repro.kernels.functions import kernel_from_name
from repro.kernels.rows import KernelRowComputer
from repro.solvers.batch_smo import BatchSMOSolver
from repro.telemetry.schema import REPORT_SCHEMA_VERSION


def _config(**overrides):
    options = {"device": scaled_tesla_p100(), "working_set_size": 32}
    options.update(overrides)
    return TrainerConfig(**options)


def _binary_problem(n=400, n_features=5, seed=1):
    x, y = gaussian_blobs(n=n, n_features=n_features, n_classes=2, seed=seed)
    labels = np.where(y == 0, 1.0, -1.0)
    return x, labels


def _sequential_solve(config, data, labels, kernel, penalty):
    """The unsharded batched solve the cascade approximates."""
    from repro.gpusim.engine import make_engine

    engine = make_engine(
        config.device,
        flop_efficiency=config.flop_efficiency,
        bandwidth_efficiency=config.bandwidth_efficiency,
        backend=config.backend,
    )
    rows = KernelRowComputer(engine, kernel, data)
    solver = BatchSMOSolver(
        penalty=penalty,
        epsilon=config.epsilon,
        working_set_size=config.working_set_size,
    )
    return solver.solve(rows, labels)


def _decision(result, labels):
    """Training-set decision values from the maintained indicators."""
    return result.f + labels + result.bias


class TestCascadeConfig:
    def test_defaults(self):
        cfg = CascadeConfig()
        assert cfg.n_shards == 4
        assert cfg.threshold == 2048
        assert cfg.dual_gap_budget is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_shards": 0},
            {"threshold": 1},
            {"max_feedback_rounds": -1},
            {"feedback_chunk": 0},
            {"dual_gap_budget": 0.0},
            {"dual_gap_budget": -1e-3},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            CascadeConfig(**kwargs)

    def test_budget_defaults_to_ten_epsilon(self):
        assert CascadeConfig().resolve_budget(1e-3) == pytest.approx(1e-2)

    def test_budget_below_epsilon_rejected(self):
        with pytest.raises(ValidationError, match="tighter"):
            CascadeConfig(dual_gap_budget=1e-4).resolve_budget(1e-3)

    def test_explicit_budget_passes_through(self):
        assert CascadeConfig(dual_gap_budget=0.05).resolve_budget(1e-3) == 0.05


class TestPartitioner:
    def test_shards_disjointly_cover_all_instances(self):
        labels = np.where(np.arange(100) % 3 == 0, 1.0, -1.0)
        shards = shard_instances(labels, 4, seed=0)
        merged = np.concatenate(shards)
        assert merged.size == 100
        assert np.array_equal(np.sort(merged), np.arange(100))

    def test_stratified_and_balanced(self):
        rng = np.random.default_rng(5)
        labels = np.where(rng.random(123) < 0.3, 1.0, -1.0)
        shards = shard_instances(labels, 5, seed=2)
        pos_counts = [int(np.sum(labels[s] > 0)) for s in shards]
        neg_counts = [int(np.sum(labels[s] < 0)) for s in shards]
        assert min(pos_counts) >= 1 and min(neg_counts) >= 1
        assert max(pos_counts) - min(pos_counts) <= 1
        assert max(neg_counts) - min(neg_counts) <= 1

    def test_deterministic_in_seed(self):
        labels = np.where(np.arange(80) % 2 == 0, 1.0, -1.0)
        a = shard_instances(labels, 4, seed=7)
        b = shard_instances(labels, 4, seed=7)
        c = shard_instances(labels, 4, seed=8)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        assert any(not np.array_equal(x, y) for x, y in zip(a, c))

    def test_indices_sorted_int64(self):
        labels = np.where(np.arange(60) % 2 == 0, 1.0, -1.0)
        for shard in shard_instances(labels, 3, seed=0):
            assert shard.dtype == np.int64
            assert np.array_equal(shard, np.sort(shard))

    def test_too_few_instances_raises(self):
        labels = np.array([1.0, 1.0, 1.0, -1.0, -1.0])
        with pytest.raises(ValidationError, match="stratified"):
            shard_instances(labels, 3, seed=0)

    def test_effective_shards_clamps(self):
        labels = np.array([1.0, 1.0, -1.0, -1.0, -1.0])
        assert effective_shards(labels, 8) == 2
        assert effective_shards(labels, 1) == 1
        with pytest.raises(ValidationError):
            effective_shards(labels, 0)


class TestReductionTree:
    def test_assign_shards_identity_when_enough_devices(self):
        assert assign_shards(4, 4) == [0, 1, 2, 3]
        assert assign_shards(2, 4) == [0, 1]

    def test_assign_shards_contiguous_blocks(self):
        assert assign_shards(8, 4) == [0, 0, 1, 1, 2, 2, 3, 3]
        assert assign_shards(5, 2) == [0, 0, 0, 1, 1]

    def test_flat_cluster_tree_shape(self):
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=4)
        tree = build_reduction_tree([0, 1, 2, 3], cluster)
        assert [len(level) for level in tree.levels] == [2, 1]
        assert tree.n_merges == 3
        assert tree.tier_counts() == {"local": 0, "intra": 3, "inter": 0}
        assert tree.root == 0

    def test_same_device_merges_are_local(self):
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        tree = build_reduction_tree([0, 0, 1, 1], cluster)
        counts = tree.tier_counts()
        assert counts["local"] == 2
        assert counts["intra"] == 1
        assert counts["inter"] == 0

    def test_hierarchical_exhausts_intra_before_inter(self):
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=4, n_nodes=2
        )
        tree = build_reduction_tree([0, 1, 2, 3], cluster)
        # Devices 0,1 on node 0 and 2,3 on node 1: one intra merge per
        # node first, then exactly n_nodes - 1 = 1 inter merge.
        assert tree.tier_counts() == {"local": 0, "intra": 2, "inter": 1}
        assert all(step.tier == "intra" for step in tree.levels[0])
        assert [step.tier for step in tree.levels[-1]] == ["inter"]

    @pytest.mark.parametrize(
        "n_devices,n_nodes,n_shards",
        [(4, 2, 4), (4, 2, 8), (8, 4, 8), (6, 3, 6), (4, 4, 4)],
    )
    def test_inter_merges_always_n_nodes_minus_one(
        self, n_devices, n_nodes, n_shards
    ):
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=n_devices, n_nodes=n_nodes
        )
        devices = assign_shards(n_shards, n_devices)
        tree = build_reduction_tree(devices, cluster)
        assert tree.tier_counts()["inter"] == n_nodes - 1
        assert tree.n_merges == n_shards - 1

    def test_single_slot_is_trivial(self):
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        tree = build_reduction_tree([1], cluster)
        assert tree.levels == []
        assert tree.root == 0

    def test_empty_slots_rejected(self):
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        with pytest.raises(ValidationError):
            build_reduction_tree([], cluster)

    def test_deterministic(self):
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=4, n_nodes=2
        )
        a = build_reduction_tree([0, 1, 2, 3, 0, 2], cluster)
        b = build_reduction_tree([0, 1, 2, 3, 0, 2], cluster)
        assert a.levels == b.levels and a.root == b.root


class TestTrainCascade:
    @pytest.fixture(scope="class")
    def problem(self):
        x, labels = _binary_problem()
        kernel = kernel_from_name("gaussian", gamma=0.5)
        config = _config()
        sequential = _sequential_solve(config, x, labels, kernel, 1.0)
        return x, labels, kernel, config, sequential

    def test_budget_met_and_verified_gap(self, problem):
        x, labels, kernel, config, _ = problem
        cluster = ClusterSpec(device=config.device, n_devices=4)
        result, report = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=4),
        )
        budget = CascadeConfig().resolve_budget(config.epsilon)
        assert report.budget_met
        assert report.final_gap <= budget
        assert report.gap_budget == pytest.approx(budget)
        assert result.converged
        assert result.final_gap == report.final_gap

    def test_solution_is_feasible(self, problem):
        x, labels, kernel, config, _ = problem
        cluster = ClusterSpec(device=config.device, n_devices=4)
        result, _ = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=4),
        )
        assert result.alpha.shape == labels.shape
        assert np.all(result.alpha >= -1e-12)
        assert np.all(result.alpha <= 1.0 + 1e-12)
        assert abs(np.dot(result.alpha, labels)) < 1e-9

    def test_decision_tracks_sequential_solve(self, problem):
        x, labels, kernel, config, sequential = problem
        cluster = ClusterSpec(device=config.device, n_devices=4)
        result, report = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=4),
        )
        d_cascade = _decision(result, labels)
        d_sequential = _decision(sequential, labels)
        assert np.max(np.abs(d_cascade - d_sequential)) < 0.05
        agreement = np.mean(np.sign(d_cascade) == np.sign(d_sequential))
        assert agreement >= 0.999
        assert result.objective == pytest.approx(
            sequential.objective, rel=1e-3
        )

    # The error-budget gate matrix: every shard count on every cluster
    # shape (flat and hierarchical) must verify its global dual gap
    # under the ceiling and stay decision-close to the sequential solve.
    @pytest.mark.parametrize("n_shards", [2, 3, 4, 6])
    @pytest.mark.parametrize(
        "n_devices,n_nodes", [(2, 1), (4, 1), (4, 2)]
    )
    def test_error_budget_matrix(
        self, problem, n_shards, n_devices, n_nodes
    ):
        x, labels, kernel, config, sequential = problem
        cluster = ClusterSpec(
            device=config.device, n_devices=n_devices, n_nodes=n_nodes
        )
        result, report = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=n_shards),
        )
        assert report.budget_met
        assert report.final_gap <= report.gap_budget
        d_cascade = _decision(result, labels)
        d_sequential = _decision(sequential, labels)
        assert np.max(np.abs(d_cascade - d_sequential)) < 0.1
        assert (
            np.mean(np.sign(d_cascade) == np.sign(d_sequential)) >= 0.999
        )

    def test_hierarchical_merges_ride_intra_tier_first(self, problem):
        x, labels, kernel, config, _ = problem
        cluster = ClusterSpec(
            device=config.device, n_devices=4, n_nodes=2
        )
        _, report = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=4),
        )
        assert report.tree["tier_counts"] == {
            "local": 0, "intra": 2, "inter": 1
        }
        # The byte ledger confirms the routing: both tiers moved SV
        # payloads, and the single inter-node merge moved less than the
        # two intra-node ones combined plus the KKT broadcasts.
        assert report.transfer_bytes["intra"] > 0
        assert report.transfer_bytes["inter"] > 0

    def test_deterministic_across_runs(self, problem):
        x, labels, kernel, config, _ = problem
        cluster = ClusterSpec(device=config.device, n_devices=2)
        first, rep_a = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=2),
        )
        second, rep_b = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=2),
        )
        assert np.array_equal(first.alpha, second.alpha)
        assert first.bias == second.bias
        assert rep_a.simulated_seconds == rep_b.simulated_seconds

    def test_report_levels_and_json(self, problem):
        x, labels, kernel, config, _ = problem
        cluster = ClusterSpec(device=config.device, n_devices=4)
        _, report = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=4),
        )
        kinds = [level["kind"] for level in report.levels]
        assert kinds[0] == "shard"
        assert "merge" in kinds
        assert kinds[-1] == "kkt"
        payload = json.loads(report.to_json())
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["kind"] == "cascade_report"
        assert 0.0 < payload["sv_survival"] <= 1.0
        assert payload["simulated_seconds"] > 0.0

    def test_more_shards_than_devices(self, problem):
        x, labels, kernel, config, _ = problem
        cluster = ClusterSpec(device=config.device, n_devices=2)
        _, report = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=6),
        )
        assert report.n_shards == 6
        assert report.budget_met
        assert report.tree["tier_counts"]["local"] > 0

    def test_shard_count_clamped_to_class_support(self):
        x, labels = _binary_problem(n=40)
        kernel = kernel_from_name("gaussian", gamma=0.5)
        config = _config()
        cluster = ClusterSpec(device=config.device, n_devices=2)
        _, report = train_cascade(
            config, cluster, x, labels, kernel, 1.0,
            cascade=CascadeConfig(n_shards=64),
        )
        assert report.requested_shards == 64
        assert report.n_shards == effective_shards(labels, 64)

    def test_non_batched_solver_rejected(self, problem):
        x, labels, kernel, config, _ = problem
        cluster = ClusterSpec(device=config.device, n_devices=2)
        bad = _config(solver="classic")
        with pytest.raises(ValidationError, match="batched"):
            train_cascade(bad, cluster, x, labels, kernel, 1.0)

    def test_bad_checkpoint_every_rejected(self, problem):
        x, labels, kernel, config, _ = problem
        cluster = ClusterSpec(device=config.device, n_devices=2)
        with pytest.raises(ValidationError, match="checkpoint_every"):
            train_cascade(
                config, cluster, x, labels, kernel, 1.0, checkpoint_every=0
            )


class TestMulticlassRouting:
    @pytest.fixture(scope="class")
    def workload(self):
        x, y = gaussian_blobs(n=360, n_features=5, n_classes=3, seed=3)
        kernel = kernel_from_name("gaussian", gamma=0.4)
        return x, y, kernel

    def test_config_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="CascadeConfig"):
            _config(cascade={"n_shards": 4})

    def test_config_rejects_non_batched_solver(self):
        with pytest.raises(ValidationError, match="batched"):
            _config(solver="classic", cascade=CascadeConfig())

    def test_threshold_routes_large_pairs_only(self, workload):
        x, y, kernel = workload
        config = _config(
            cascade=CascadeConfig(n_shards=4, threshold=150)
        )
        model, report = train_multiclass(config, x, y, kernel, 1.0)
        routed = [s for s in report.per_svm if "cascade" in s]
        assert len(routed) == 3  # every pair has 240 >= 150 instances
        for stats in routed:
            info = stats["cascade"]
            assert info["budget_met"]
            assert info["final_gap"] <= info["gap_budget"]
            assert info["n_shards"] == 4
            assert stats["warm_start"] is False

    def test_high_threshold_is_bitwise_noop(self, workload):
        x, y, kernel = workload
        baseline_model, _ = train_multiclass(
            _config(), x, y, kernel, 1.0
        )
        routed_model, report = train_multiclass(
            _config(cascade=CascadeConfig(n_shards=4, threshold=100_000)),
            x, y, kernel, 1.0,
        )
        assert not any("cascade" in s for s in report.per_svm)
        for a, b in zip(baseline_model.records, routed_model.records):
            assert np.array_equal(a.coefficients, b.coefficients)
            assert np.array_equal(a.global_sv_indices, b.global_sv_indices)
            assert a.bias == b.bias

    def test_cascade_predictions_agree_with_baseline(self, workload):
        x, y, kernel = workload
        from repro.core.predictor import PredictorConfig, predict_labels_model

        baseline_model, _ = train_multiclass(_config(), x, y, kernel, 1.0)
        cascade_model, _ = train_multiclass(
            _config(cascade=CascadeConfig(n_shards=4, threshold=150)),
            x, y, kernel, 1.0,
        )
        pconfig = PredictorConfig(device=scaled_tesla_p100())
        base_labels, _ = predict_labels_model(pconfig, baseline_model, x)
        casc_labels, _ = predict_labels_model(pconfig, cascade_model, x)
        assert np.mean(base_labels == casc_labels) >= 0.999

    def test_sharded_trainer_reports_cascade(self, workload):
        x, y, kernel = workload
        config = _config()
        cluster = ClusterSpec(
            device=config.device, n_devices=4, n_nodes=2
        )
        model, report = train_multiclass_sharded(
            config, cluster, x, y, kernel, 1.0,
            cascade=CascadeConfig(n_shards=4, threshold=150),
        )
        assert len(report.cascade) == 3
        for entry in report.cascade:
            assert entry["report"]["budget_met"]
            assert entry["root_device"] == entry["report"]["tree"]["root_device"]
        assert "cascade_routed" in report.placement
        assert report.transfer_tier_bytes["intra"] > 0
        assert report.transfer_tier_bytes["inter"] > 0
        payload = json.loads(report.to_json())
        assert payload["cascade"][0]["report"]["kind"] == "cascade_report"

    def test_sharded_no_route_stays_bitwise(self, workload):
        x, y, kernel = workload
        config = _config()
        single_model, _ = train_multiclass(config, x, y, kernel, 1.0)
        cluster = ClusterSpec(device=config.device, n_devices=2)
        sharded_model, report = train_multiclass_sharded(
            config, cluster, x, y, kernel, 1.0,
            cascade=CascadeConfig(n_shards=4, threshold=100_000),
        )
        assert report.cascade == []
        for a, b in zip(single_model.records, sharded_model.records):
            assert np.array_equal(a.coefficients, b.coefficients)
            assert a.bias == b.bias

    def test_sharded_rejects_cascade_with_faults(self, workload):
        x, y, kernel = workload
        from repro.faults import DeviceLoss, FaultPlan

        config = _config()
        cluster = ClusterSpec(device=config.device, n_devices=2)
        with pytest.raises(ValidationError, match="train_cascade"):
            train_multiclass_sharded(
                config, cluster, x, y, kernel, 1.0,
                cascade=CascadeConfig(n_shards=2, threshold=100),
                fault_plan=FaultPlan(
                    losses=[DeviceLoss(device=1, at_s=0.0)]
                ),
            )
