"""The CI regression gate itself: tolerances, SLO ceilings, failure modes.

``benchmarks/check_regression.py`` is what stands between a perf
regression and a green checkmark, so its *own* failure modes need to be
boring and explicit: a missing metric or a non-numeric value must name
the offending key (never surface a raw ``KeyError``), a
``schema_version`` mismatch must refuse to compare at exit 2, and an
``--slo NAME=MAX`` ceiling must hold regardless of the committed
baseline.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.check_regression import (
    check_slos,
    compare_metrics,
    load_bench,
    main,
)


def write_bench(path, metrics, *, schema="repro.bench/1", kind="bench", name="demo"):
    payload = {
        "kind": kind,
        "schema_version": schema,
        "name": name,
        "metrics": metrics,
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


@pytest.fixture
def bench_pair(tmp_path):
    def make(base_metrics, cand_metrics, **cand_kwargs):
        base = write_bench(tmp_path / "base.json", base_metrics)
        cand = write_bench(tmp_path / "cand.json", cand_metrics, **cand_kwargs)
        return str(base), str(cand)

    return make


class TestCompareMetrics:
    def test_within_tolerance_passes(self):
        failures = compare_metrics(
            {"a": 1.0, "b": 100.0},
            {"a": 1.05, "b": 109.0},
            rtol=0.15,
            atol=1e-12,
        )
        assert failures == []

    def test_out_of_tolerance_names_the_metric(self):
        failures = compare_metrics(
            {"throughput": 100.0}, {"throughput": 50.0}, rtol=0.15, atol=0.0
        )
        assert len(failures) == 1
        assert failures[0].startswith("throughput:")
        assert "tolerance" in failures[0]

    def test_improvement_beyond_tolerance_also_fails(self):
        failures = compare_metrics(
            {"throughput": 100.0}, {"throughput": 200.0}, rtol=0.15, atol=0.0
        )
        assert len(failures) == 1

    def test_missing_metric_is_named_not_keyerror(self):
        failures = compare_metrics(
            {"latency_p99_s": 1.0}, {}, rtol=0.15, atol=0.0
        )
        assert len(failures) == 1
        assert "latency_p99_s" in failures[0]
        assert "missing from candidate" in failures[0]

    def test_non_numeric_candidate_is_named_not_typeerror(self):
        failures = compare_metrics(
            {"latency_p99_s": 1.0},
            {"latency_p99_s": "fast"},
            rtol=0.15,
            atol=0.0,
        )
        assert len(failures) == 1
        assert "latency_p99_s" in failures[0]
        assert "not numeric" in failures[0]

    def test_non_numeric_baseline_is_named(self):
        failures = compare_metrics(
            {"flag": None}, {"flag": 1.0}, rtol=0.15, atol=0.0
        )
        assert len(failures) == 1
        assert "flag" in failures[0] and "baseline" in failures[0]

    def test_per_metric_override_loosens_one_metric_only(self):
        failures = compare_metrics(
            {"wobbly": 100.0, "stable": 100.0},
            {"wobbly": 160.0, "stable": 160.0},
            rtol=0.15,
            atol=0.0,
            metric_rtol={"wobbly": 0.75},
        )
        assert len(failures) == 1
        assert failures[0].startswith("stable:")


class TestCheckSlos:
    def test_under_ceiling_passes(self):
        assert check_slos({"latency_p99_s": 0.9}, {"latency_p99_s": 1.0}) == []

    def test_breach_names_metric_and_ceiling(self):
        failures = check_slos({"latency_p99_s": 2.0}, {"latency_p99_s": 1.0})
        assert len(failures) == 1
        assert "latency_p99_s" in failures[0]
        assert "SLO breach" in failures[0]

    def test_exactly_at_ceiling_passes(self):
        assert check_slos({"m": 1.0}, {"m": 1.0}) == []

    def test_missing_slo_metric_fails_by_name(self):
        failures = check_slos({}, {"latency_p99_s": 1.0})
        assert len(failures) == 1
        assert "latency_p99_s" in failures[0]
        assert "missing" in failures[0]


class TestLoadBench:
    def test_unreadable_file_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as err:
            load_bench(tmp_path / "nope.json")
        assert err.value.code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_wrong_kind_exits_2(self, tmp_path, capsys):
        path = write_bench(tmp_path / "x.json", {"a": 1.0}, kind="table")
        with pytest.raises(SystemExit) as err:
            load_bench(path)
        assert err.value.code == 2
        assert "not a repro.bench payload" in capsys.readouterr().err

    def test_non_string_schema_exits_2_not_attributeerror(self, tmp_path):
        path = write_bench(tmp_path / "x.json", {"a": 1.0}, schema=3)
        with pytest.raises(SystemExit) as err:
            load_bench(path)
        assert err.value.code == 2


class TestMain:
    def test_ok_exit_0(self, bench_pair, capsys):
        base, cand = bench_pair({"a": 1.0}, {"a": 1.0})
        assert main(["--baseline", base, "--candidate", cand]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exit_1_with_named_metric(self, bench_pair, capsys):
        base, cand = bench_pair({"a": 1.0}, {"a": 9.0})
        assert main(["--baseline", base, "--candidate", cand]) == 1
        err = capsys.readouterr().err
        assert "FAIL" in err and "a:" in err

    def test_schema_mismatch_exit_2(self, bench_pair, capsys):
        base, cand = bench_pair({"a": 1.0}, {"a": 1.0}, schema="repro.bench/2")
        with pytest.raises(SystemExit) as err:
            main(["--baseline", base, "--candidate", cand])
        assert err.value.code == 2
        assert "schema_version mismatch" in capsys.readouterr().err

    def test_slo_breach_exit_1(self, bench_pair, capsys):
        base, cand = bench_pair({"p99": 1.0}, {"p99": 1.0})
        argv = ["--baseline", base, "--candidate", cand, "--slo", "p99=0.5"]
        assert main(argv) == 1
        assert "SLO breach" in capsys.readouterr().err

    def test_slo_pass_exit_0(self, bench_pair):
        base, cand = bench_pair({"p99": 1.0}, {"p99": 1.0})
        argv = ["--baseline", base, "--candidate", cand, "--slo", "p99=2.0"]
        assert main(argv) == 0

    def test_slo_on_missing_metric_exit_1(self, bench_pair, capsys):
        base, cand = bench_pair({"a": 1.0}, {"a": 1.0})
        argv = ["--baseline", base, "--candidate", cand, "--slo", "p99=2.0"]
        assert main(argv) == 1
        assert "p99" in capsys.readouterr().err

    def test_bad_slo_spec_exit_2(self, bench_pair, capsys):
        base, cand = bench_pair({"a": 1.0}, {"a": 1.0})
        with pytest.raises(SystemExit) as err:
            main(["--baseline", base, "--candidate", cand, "--slo", "p99"])
        assert err.value.code == 2
        assert "--slo" in capsys.readouterr().err

    def test_missing_candidate_metric_exit_1_named(self, bench_pair, capsys):
        base, cand = bench_pair({"a": 1.0, "b": 2.0}, {"a": 1.0})
        assert main(["--baseline", base, "--candidate", cand]) == 1
        err = capsys.readouterr().err
        assert "b:" in err and "missing from candidate" in err

    def test_committed_baselines_satisfy_their_own_slos(self):
        # The live CI contract: the committed serving baselines must sit
        # under the SLO ceilings wired into .github/workflows/ci.yml.
        argv = [
            "--baseline",
            "benchmarks/baselines/BENCH_serving.json",
            "--candidate",
            "benchmarks/baselines/BENCH_serving.json",
            "--slo",
            "latency_p50_simulated_s=1e-4",
            "--slo",
            "latency_p99_simulated_s=2e-4",
        ]
        assert main(argv) == 0
