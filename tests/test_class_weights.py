"""Unit tests for per-class penalty weighting (LibSVM's -wi)."""

import numpy as np
import pytest

from repro import GMPSVC, ValidationError
from repro.baselines import LibSVMClassifier
from repro.data import gaussian_blobs
from repro.gpusim import make_engine, scaled_tesla_p100
from repro.kernels import GaussianKernel, KernelRowComputer
from repro.solvers import BatchSMOSolver, ClassicSMOSolver
from repro.solvers.base import resolve_penalty_vector

from tests.conftest import make_binary_problem


@pytest.fixture
def imbalanced():
    rng = np.random.default_rng(17)
    x = np.vstack([rng.normal(-0.8, 1, (170, 4)), rng.normal(0.8, 1, (30, 4))])
    y = np.concatenate([np.zeros(170), np.ones(30)])
    return x, y


class TestPenaltyVector:
    def test_resolve_default_is_constant(self):
        vec = resolve_penalty_vector(2.5, 4, None)
        assert np.allclose(vec, 2.5)

    def test_resolve_validates(self):
        with pytest.raises(ValidationError):
            resolve_penalty_vector(1.0, 3, np.array([1.0, 2.0]))
        with pytest.raises(ValidationError):
            resolve_penalty_vector(1.0, 2, np.array([1.0, 0.0]))

    def test_solvers_respect_per_instance_bounds(self):
        x, y = make_binary_problem(n=120, separation=0.5, seed=3)
        engine = make_engine(scaled_tesla_p100())
        rows = KernelRowComputer(engine, GaussianKernel(0.25), x)
        c_vec = np.where(y > 0, 5.0, 0.5)
        result = ClassicSMOSolver(penalty=5.0).solve(
            rows, y, penalty_vector=c_vec
        )
        assert np.all(result.alpha <= c_vec + 1e-12)
        assert np.any(result.alpha[y < 0] > 0.4)  # negatives hit their bound

    def test_batched_and_classic_agree_under_weights(self):
        x, y = make_binary_problem(n=150, separation=0.6, seed=8)
        c_vec = np.where(y > 0, 8.0, 2.0)
        engine_a = make_engine(scaled_tesla_p100())
        rows_a = KernelRowComputer(engine_a, GaussianKernel(0.25), x)
        classic = ClassicSMOSolver(penalty=8.0).solve(
            rows_a, y, penalty_vector=c_vec
        )
        engine_b = make_engine(scaled_tesla_p100())
        rows_b = KernelRowComputer(engine_b, GaussianKernel(0.25), x)
        batched = BatchSMOSolver(penalty=8.0, working_set_size=32).solve(
            rows_b, y, penalty_vector=c_vec
        )
        assert batched.objective == pytest.approx(classic.objective, rel=1e-4)
        assert batched.bias == pytest.approx(classic.bias, abs=5e-3)


class TestEstimatorAPI:
    def test_weighting_boosts_minority_recall(self, imbalanced):
        x, y = imbalanced
        plain = GMPSVC(C=1.0, gamma=0.5, working_set_size=16).fit(x, y)
        weighted = GMPSVC(
            C=1.0, gamma=0.5, working_set_size=16, class_weight={1: 8.0}
        ).fit(x, y)

        def minority_recall(clf):
            return float(np.mean(clf.predict(x)[y == 1] == 1))

        assert minority_recall(weighted) >= minority_recall(plain)
        # The weighted model pushes more weight onto minority instances.
        assert weighted.model_.records[0].bias != plain.model_.records[0].bias

    def test_weight_one_is_identical_to_unweighted(self, imbalanced):
        x, y = imbalanced
        plain = GMPSVC(C=1.0, gamma=0.5, working_set_size=16).fit(x, y)
        trivial = GMPSVC(
            C=1.0, gamma=0.5, working_set_size=16, class_weight={1: 1.0}
        ).fit(x, y)
        assert trivial.model_.records[0].bias == plain.model_.records[0].bias

    def test_unknown_label_rejected(self, imbalanced):
        x, y = imbalanced
        with pytest.raises(ValidationError, match="not a training label"):
            GMPSVC(class_weight={7: 2.0}).fit(x, y)

    def test_nonpositive_weight_rejected(self, imbalanced):
        x, y = imbalanced
        with pytest.raises(ValidationError, match="positive"):
            GMPSVC(class_weight={1: 0.0}).fit(x, y)

    def test_multiclass_weights(self):
        x, y = gaussian_blobs(180, 5, 3, seed=9)
        clf = GMPSVC(
            C=10.0, gamma=0.4, working_set_size=16, class_weight={0: 2.0, 2: 0.5}
        ).fit(x, y)
        assert clf.score(x, y) > 0.9

    def test_libsvm_baseline_supports_weights(self, imbalanced):
        x, y = imbalanced
        clf = LibSVMClassifier(C=1.0, gamma=0.5, class_weight={1: 8.0}).fit(x, y)
        gmp = GMPSVC(
            C=1.0, gamma=0.5, working_set_size=16, class_weight={1: 8.0}
        ).fit(x, y)
        assert clf.model_.records[0].bias == pytest.approx(
            gmp.model_.records[0].bias, abs=5e-3
        )

    def test_weights_with_ova(self, imbalanced):
        x, y = imbalanced
        clf = GMPSVC(
            C=1.0, gamma=0.5, working_set_size=16,
            decomposition="ova", class_weight={1: 6.0},
        ).fit(x, y)
        assert np.mean(clf.predict(x)[y == 1] == 1) > 0.9
