"""Unit tests for the repro-train / repro-predict command-line tools."""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.cli import predict_main, serve_bench_main, serve_main, train_main
from repro.data import gaussian_blobs
from repro.sparse import CSRMatrix, dump_libsvm


@pytest.fixture
def svm_files(tmp_path, rng):
    """A small 3-class train/test pair in LibSVM format."""
    x, y = gaussian_blobs(180, 5, 3, seed=10)
    train = tmp_path / "train.svm"
    test = tmp_path / "test.svm"
    dump_libsvm(CSRMatrix.from_dense(x[:140]), y[:140], train)
    dump_libsvm(CSRMatrix.from_dense(x[140:]), y[140:], test)
    return train, test, tmp_path


class TestTrain:
    def test_trains_and_saves_model(self, svm_files, capsys):
        train, _, tmp = svm_files
        model_path = tmp / "out.model"
        code = train_main(["-c", "10", "-g", "0.4", str(train), str(model_path)])
        assert code == 0
        assert model_path.exists()
        out = capsys.readouterr().out
        assert "3 binary SVM(s)" in out
        assert "3 classes" in out

    def test_default_model_path(self, svm_files):
        train, _, __ = svm_files
        assert train_main(["-q", str(train)]) == 0
        assert train.with_suffix(".svm.model").exists()

    def test_report_flag(self, svm_files, capsys):
        train, _, tmp = svm_files
        code = train_main(
            ["--report", "-c", "10", "-g", "0.4", str(train), str(tmp / "m")]
        )
        assert code == 0
        assert "kernel_values" in capsys.readouterr().out

    @pytest.mark.parametrize("system", ["libsvm", "gpu-baseline", "cmp-svm"])
    def test_alternative_systems(self, svm_files, system, tmp_path):
        train, _, __ = svm_files
        model = tmp_path / f"{system}.model"
        code = train_main(
            ["-q", "--system", system, "-c", "10", "-g", "0.4", str(train), str(model)]
        )
        assert code == 0 and model.exists()

    def test_kernel_type_flag(self, svm_files, tmp_path):
        train, _, __ = svm_files
        model = tmp_path / "linear.model"
        assert train_main(["-q", "-t", "0", "-c", "1", str(train), str(model)]) == 0

    def test_missing_file_errors(self, tmp_path, capsys):
        code = train_main([str(tmp_path / "nope.svm")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_data_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.svm"
        path.write_text("not a libsvm line\n")
        assert train_main([str(path)]) == 1


class TestCascadeCLI:
    def test_routes_and_prints_per_level_summary(self, svm_files, capsys):
        train, _, tmp = svm_files
        code = train_main([
            "-c", "10", "-g", "0.4",
            "--instance-shards", "4", "--cascade-threshold", "80",
            str(train), str(tmp / "casc.model"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cascade-routed 3 pair(s)" in out
        assert "level shard" in out
        assert "level merge" in out
        assert "(met)" in out
        assert "MISSED" not in out

    def test_threshold_gates_routing(self, svm_files, capsys):
        train, _, tmp = svm_files
        code = train_main([
            "-c", "10", "-g", "0.4",
            "--instance-shards", "4", "--cascade-threshold", "100000",
            str(train), str(tmp / "gated.model"),
        ])
        assert code == 0
        assert "cascade-routed" not in capsys.readouterr().out

    def test_combines_with_devices(self, svm_files, capsys):
        train, _, tmp = svm_files
        code = train_main([
            "-c", "10", "-g", "0.4", "--devices", "2",
            "--instance-shards", "2", "--cascade-threshold", "80",
            str(train), str(tmp / "dev.model"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "cascade-routed 3 pair(s)" in out

    def test_report_json_carries_cascade_stats(self, svm_files):
        train, _, tmp = svm_files
        report_path = tmp / "cascade_report.json"
        code = train_main([
            "-q", "-c", "10", "-g", "0.4",
            "--instance-shards", "2", "--cascade-threshold", "80",
            "--report-json", str(report_path),
            str(train), str(tmp / "rj.model"),
        ])
        assert code == 0
        payload = json.loads(report_path.read_text())
        routed = [s for s in payload["per_svm"] if "cascade" in s]
        assert len(routed) == 3
        assert all(s["cascade"]["budget_met"] for s in routed)

    def test_model_predicts(self, svm_files, capsys):
        train, test, tmp = svm_files
        model = tmp / "casc_pred.model"
        assert train_main([
            "-q", "-c", "10", "-g", "0.4",
            "--instance-shards", "2", "--cascade-threshold", "80",
            str(train), str(model),
        ]) == 0
        assert predict_main([str(test), str(model)]) == 0
        err = capsys.readouterr().err
        accuracy = float(err.split("=")[1].split("%")[0])
        assert accuracy >= 80.0

    @pytest.mark.parametrize(
        "argv,message",
        [
            (["--instance-shards", "0"], "--instance-shards must be >= 1"),
            (
                ["--instance-shards", "2", "--system", "libsvm"],
                "gmp-svm",
            ),
            (
                ["--instance-shards", "2", "--devices", "2",
                 "--fault-seed", "3"],
                "--fault-seed",
            ),
            (
                ["--instance-shards", "2", "--cascade-threshold", "1"],
                "--cascade-threshold",
            ),
        ],
    )
    def test_flag_validation(self, svm_files, capsys, argv, message):
        train, _, tmp = svm_files
        code = train_main(argv + [str(train), str(tmp / "x.model")])
        assert code == 1
        assert message in capsys.readouterr().err


class TestPredict:
    @pytest.fixture
    def trained(self, svm_files):
        train, test, tmp = svm_files
        model = tmp / "model"
        assert train_main(["-q", "-c", "10", "-g", "0.4", str(train), str(model)]) == 0
        return test, model, tmp

    def test_label_prediction(self, trained, capsys):
        test, model, tmp = trained
        output = tmp / "pred.txt"
        code = predict_main([str(test), str(model), str(output)])
        assert code == 0
        lines = output.read_text().strip().splitlines()
        assert len(lines) == 40
        assert all(line in ("0", "1", "2") for line in lines)
        err = capsys.readouterr().err
        assert "Accuracy" in err

    def test_probability_prediction(self, trained):
        test, model, tmp = trained
        output = tmp / "proba.txt"
        code = predict_main(["-b", "1", str(test), str(model), str(output)])
        assert code == 0
        lines = output.read_text().strip().splitlines()
        assert lines[0].startswith("labels")
        first = lines[1].split()
        probabilities = np.array([float(v) for v in first[1:]])
        assert probabilities.size == 3
        assert probabilities.sum() == pytest.approx(1.0, abs=1e-5)

    def test_stdout_output(self, trained, capsys):
        test, model, _ = trained
        assert predict_main(["-q", str(test), str(model)]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 40

    def test_accuracy_is_sane(self, trained, capsys):
        test, model, _ = trained
        predict_main(["-q" , str(test), str(model)])
        # quiet mode: no accuracy line
        assert "Accuracy" not in capsys.readouterr().err
        predict_main([str(test), str(model)])
        err = capsys.readouterr().err
        accuracy = float(err.split("=")[1].split("%")[0])
        assert accuracy >= 80.0

    def test_missing_model_errors(self, trained, capsys):
        test, _, tmp = trained
        assert predict_main([str(test), str(tmp / "missing.model")]) == 1
        assert "error" in capsys.readouterr().err


class TestObservability:
    @pytest.fixture
    def artifacts(self, svm_files):
        """Train with --report-json and --trace; return all the paths."""
        import json

        train, test, tmp = svm_files
        model = tmp / "model"
        report_path = tmp / "train_report.json"
        trace_path = tmp / "train_trace.jsonl"
        code = train_main([
            "-q", "-c", "10", "-g", "0.4",
            "--report-json", str(report_path),
            "--trace", str(trace_path),
            str(train), str(model),
        ])
        assert code == 0
        return test, model, tmp, report_path, trace_path, json

    def test_train_report_json(self, artifacts):
        *_, report_path, __, json = artifacts
        report = json.loads(report_path.read_text())
        assert report["schema_version"].startswith("repro.report/")
        assert report["kind"] == "training_report"
        assert report["n_binary_svms"] == 3
        assert report["total_iterations"] > 0
        assert 0.0 <= report["buffer_hit_rate"] <= 1.0
        assert report["breakdown"]  # per-category simulated seconds
        assert len(report["per_svm"]) == 3

    def test_train_trace_jsonl(self, artifacts):
        *_, trace_path, json = artifacts
        lines = trace_path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records
        for record in records:
            assert record["schema_version"].startswith("repro.trace/")
        names = {r["name"] for r in records}
        assert "train_multiclass" in names
        assert "solve_pair" in names

    def test_predict_report_and_trace(self, artifacts, tmp_path):
        test, model, tmp, *_, json = artifacts
        report_path = tmp_path / "predict_report.json"
        trace_path = tmp_path / "predict_trace.jsonl"
        code = predict_main([
            "-q",
            "--report-json", str(report_path),
            "--trace", str(trace_path),
            str(test), str(model),
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["kind"] == "prediction_report"
        assert report["n_instances"] == 40
        names = {
            json.loads(line)["name"]
            for line in trace_path.read_text().strip().splitlines()
        }
        assert "predict_labels" in names

    def test_flags_off_writes_nothing(self, svm_files):
        train, _, tmp = svm_files
        assert train_main(["-q", str(train), str(tmp / "m")]) == 0
        assert not list(tmp.glob("*.json")) and not list(tmp.glob("*.jsonl"))


class TestServeBench:
    @pytest.fixture
    def trained(self, svm_files):
        train, test, tmp = svm_files
        model = tmp / "model"
        assert train_main(["-q", "-c", "10", "-g", "0.4", str(train), str(model)]) == 0
        return test, model

    def test_reports_warm_speedup(self, trained, capsys):
        test, model = trained
        code = serve_bench_main(
            [str(test), str(model), "-n", "48", "--max-batch", "16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 48 requests" in out
        assert "warm speedup" in out
        assert "latency p50/p99" in out

    def test_report_json_metrics(self, trained, tmp_path):
        import json

        test, model = trained
        report = tmp_path / "serve.json"
        code = serve_bench_main([
            "-q", str(test), str(model), "-n", "32",
            "--max-batch", "8", "--report-json", str(report),
        ])
        assert code == 0
        metrics = json.loads(report.read_text())
        assert metrics["n_requests"] == 32
        assert metrics["n_batches"] == 4
        assert metrics["mean_batch_size"] == 8.0
        assert metrics["warm_simulated_s"] > 0
        assert metrics["speedup"] > 1.0
        assert metrics["latency_p99_s"] >= metrics["latency_p50_s"] > 0

    def test_trace_has_serving_spans(self, trained, tmp_path):
        import json

        test, model = trained
        trace = tmp_path / "serve_trace.jsonl"
        code = serve_bench_main([
            "-q", str(test), str(model), "-n", "8", "--trace", str(trace),
        ])
        assert code == 0
        names = {
            json.loads(line)["name"]
            for line in trace.read_text().strip().splitlines()
        }
        assert {"serve_seal", "serve_batch", "serve_request"} <= names

    def test_decision_function_kind(self, trained):
        test, model = trained
        assert serve_bench_main([
            "-q", str(test), str(model), "-n", "8",
            "--kind", "decision_function",
        ]) == 0

    def test_missing_model_errors(self, trained, tmp_path, capsys):
        test, _ = trained
        code = serve_bench_main([str(test), str(tmp_path / "nope.model")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestServe:
    @pytest.fixture
    def model_path(self, svm_files):
        train, _, tmp = svm_files
        model = tmp / "serve.model"
        code = train_main(["-q", "-c", "10", "-g", "0.4", str(train), str(model)])
        assert code == 0
        return model

    def test_serves_over_socket_then_exits(self, model_path, monkeypatch):
        import repro.server

        ready = threading.Event()
        bound = {}
        real_serve_http = repro.server.serve_http

        def capture_port(app, host, port, **kwargs):
            inner = kwargs.get("ready_callback")

            def on_ready(bound_host, bound_port):
                bound["port"] = bound_port
                ready.set()
                if inner is not None:
                    inner(bound_host, bound_port)

            kwargs["ready_callback"] = on_ready
            return real_serve_http(app, host, port, **kwargs)

        monkeypatch.setattr(repro.server, "serve_http", capture_port)
        result = {}
        thread = threading.Thread(
            target=lambda: result.setdefault(
                "code",
                serve_main([
                    str(model_path), "--port", "0", "--max-requests", "2",
                    "--tenant-policy", "vip=1000,8,4", "-q",
                ]),
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=60)

        from repro.server.protocol import encode_matrix

        x, _ = gaussian_blobs(8, 5, 3, seed=3)
        body = json.dumps({"instances": encode_matrix(x[:2])}).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{bound['port']}/v1/predict_proba",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.status == 200
            payload = json.loads(response.read())
        assert payload["kind"] == "predict_proba"
        assert payload["batch"]["n_requests"] == 1
        from repro.server.protocol import decode_array

        assert decode_array(payload["result"]).shape == (2, 3)

        # The second request reaches --max-requests and stops the server.
        with urllib.request.urlopen(
            f"http://127.0.0.1:{bound['port']}/healthz", timeout=60
        ) as response:
            assert response.status == 200
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert result["code"] == 0

    def test_bad_tenant_policy_errors(self, model_path, capsys):
        code = serve_main([str(model_path), "--tenant-policy", "oops"])
        assert code == 1
        assert "tenant-policy" in capsys.readouterr().err

    def test_missing_model_errors(self, tmp_path, capsys):
        code = serve_main([str(tmp_path / "nope.model")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestLifecycleFlags:
    @pytest.fixture
    def grown_files(self, svm_files):
        """The training file plus a grown variant (appended rows)."""
        train, _, tmp = svm_files
        x, y = gaussian_blobs(180, 5, 3, seed=10)
        x2, y2 = gaussian_blobs(30, 5, 3, seed=11)
        grown = tmp / "grown.svm"
        dump_libsvm(
            CSRMatrix.from_dense(np.vstack([x[:140], np.asarray(x2)])),
            np.concatenate([y[:140], y2]),
            grown,
        )
        return train, grown, tmp

    def test_publish_and_warm_start_record_lineage(self, grown_files):
        from repro.registry import ModelRegistry

        train, grown, tmp = grown_files
        registry = tmp / "registry"
        model_a = tmp / "a.model"
        model_b = tmp / "b.model"
        assert train_main([
            "-q", "-c", "1", "-g", "0.4", str(train), str(model_a),
            "--publish", str(registry),
        ]) == 0
        assert train_main([
            "-q", "-c", "1", "-g", "0.4", str(grown), str(model_b),
            "--warm-start", str(model_a), "--publish", str(registry),
        ]) == 0
        reg = ModelRegistry(registry)
        assert [v.version for v in reg.versions()] == [1, 2]
        assert reg.get(2).parent == 1
        assert reg.lineage(2) == [2, 1]

    def test_warm_start_with_classic_system_errors(self, grown_files, capsys):
        train, grown, tmp = grown_files
        model_a = tmp / "a.model"
        assert train_main(
            ["-q", "-c", "1", "-g", "0.4", str(train), str(model_a)]
        ) == 0
        code = train_main([
            "-q", "--system", "libsvm", str(grown),
            str(tmp / "b.model"), "--warm-start", str(model_a),
        ])
        assert code == 1
        assert "batched" in capsys.readouterr().err

    def test_serve_requires_model_or_registry(self, capsys):
        code = serve_main([])
        assert code == 1
        assert "registry" in capsys.readouterr().err.lower()

    def test_watch_registry_requires_registry(self, capsys):
        code = serve_main(["--watch-registry"])
        assert code == 1
        assert "--registry" in capsys.readouterr().err

    def test_serve_from_registry_over_socket(self, grown_files, monkeypatch):
        import repro.server

        train, _, tmp = grown_files
        registry = tmp / "registry"
        assert train_main([
            "-q", "-c", "1", "-g", "0.4", str(train),
            str(tmp / "a.model"), "--publish", str(registry),
        ]) == 0

        ready = threading.Event()
        bound = {}
        real_serve_http = repro.server.serve_http

        def capture_port(app, host, port, **kwargs):
            inner = kwargs.get("ready_callback")

            def on_ready(bound_host, bound_port):
                bound["port"] = bound_port
                ready.set()
                if inner is not None:
                    inner(bound_host, bound_port)

            kwargs["ready_callback"] = on_ready
            return real_serve_http(app, host, port, **kwargs)

        monkeypatch.setattr(repro.server, "serve_http", capture_port)
        result = {}
        thread = threading.Thread(
            target=lambda: result.setdefault(
                "code",
                serve_main([
                    "--registry", str(registry), "--watch-registry",
                    "--port", "0", "--max-requests", "1", "-q",
                ]),
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=60)
        with urllib.request.urlopen(
            f"http://127.0.0.1:{bound['port']}/healthz", timeout=60
        ) as response:
            assert response.status == 200
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert result["code"] == 0
