"""Unit tests for cross-validated sigmoid targets (LibSVM -b 1 parity)."""

import numpy as np
import pytest

from repro import GMPSVC
from repro.data import gaussian_blobs, train_test_split
from repro.exceptions import ConvergenceWarning


@pytest.fixture(scope="module")
def problem():
    data, labels = gaussian_blobs(400, 6, 2, separation=1.2, seed=21)
    return train_test_split(data, labels, test_fraction=0.3, seed=22)


class TestCVSigmoid:
    def test_cv_changes_the_sigmoid_not_the_svm(self, problem):
        x_train, y_train, _, __ = problem
        direct = GMPSVC(C=10.0, gamma=0.3).fit(x_train, y_train)
        cv = GMPSVC(C=10.0, gamma=0.3, probability_cv_folds=5).fit(x_train, y_train)
        assert cv.model_.records[0].bias == pytest.approx(
            direct.model_.records[0].bias, abs=1e-9
        )
        assert cv.model_.records[0].sigmoid.a != direct.model_.records[0].sigmoid.a

    def test_cv_costs_extra_solves(self, problem):
        x_train, y_train, _, __ = problem
        direct = GMPSVC(C=10.0, gamma=0.3).fit(x_train, y_train)
        cv = GMPSVC(C=10.0, gamma=0.3, probability_cv_folds=5).fit(x_train, y_train)
        assert (
            cv.training_report_.simulated_seconds
            > 2 * direct.training_report_.simulated_seconds
        )

    def test_cv_improves_or_matches_calibration(self, problem):
        """Out-of-fold targets should not be worse-calibrated on test data."""
        x_train, y_train, x_test, y_test = problem

        def log_loss(clf):
            proba = clf.predict_proba(x_test)
            positions = np.searchsorted(clf.classes_, y_test)
            p = np.clip(proba[np.arange(y_test.size), positions], 1e-12, 1.0)
            return float(-np.mean(np.log(p)))

        direct = GMPSVC(C=10.0, gamma=0.3).fit(x_train, y_train)
        cv = GMPSVC(C=10.0, gamma=0.3, probability_cv_folds=5).fit(x_train, y_train)
        assert log_loss(cv) <= log_loss(direct) * 1.1

    def test_probabilities_remain_valid(self, problem):
        x_train, y_train, x_test, _ = problem
        cv = GMPSVC(C=10.0, gamma=0.3, probability_cv_folds=3).fit(x_train, y_train)
        proba = cv.predict_proba(x_test)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_fallback_when_class_too_small(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(30, 4))
        y = np.concatenate([np.zeros(29), np.ones(1)])
        x[y == 1] += 3.0
        with pytest.warns(ConvergenceWarning, match="not enough"):
            clf = GMPSVC(
                C=1.0, gamma=0.5, probability_cv_folds=10, working_set_size=16
            ).fit(x, y)
        assert clf.model_.records[0].sigmoid is not None

    def test_multiclass_cv(self):
        x, y = gaussian_blobs(180, 5, 3, seed=4)
        clf = GMPSVC(C=10.0, gamma=0.4, probability_cv_folds=3).fit(x, y)
        proba = clf.predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert clf.score(x, y) > 0.9

    def test_deterministic(self, problem):
        x_train, y_train, _, __ = problem
        a = GMPSVC(C=10.0, gamma=0.3, probability_cv_folds=4).fit(x_train, y_train)
        b = GMPSVC(C=10.0, gamma=0.3, probability_cv_folds=4).fit(x_train, y_train)
        assert a.model_.records[0].sigmoid.a == b.model_.records[0].sigmoid.a
