"""Unit tests for synthetic generators and the dataset registry."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    binary01_features,
    dataset_names,
    gaussian_blobs,
    image_like,
    load_dataset,
    tfidf_like,
    train_test_split,
)
from repro.exceptions import ValidationError
from repro.sparse import CSRMatrix


class TestGenerators:
    def test_gaussian_blobs_shapes_and_balance(self):
        x, y = gaussian_blobs(90, 5, 3, seed=1)
        assert x.shape == (90, 5)
        counts = np.bincount(y)
        assert counts.tolist() == [30, 30, 30]

    def test_gaussian_blobs_deterministic(self):
        x1, y1 = gaussian_blobs(50, 4, 2, seed=7)
        x2, y2 = gaussian_blobs(50, 4, 2, seed=7)
        assert np.array_equal(x1, x2) and np.array_equal(y1, y2)

    def test_gaussian_blobs_seed_matters(self):
        x1, _ = gaussian_blobs(50, 4, 2, seed=7)
        x2, _ = gaussian_blobs(50, 4, 2, seed=8)
        assert not np.array_equal(x1, x2)

    def test_image_like_range(self):
        x, y = image_like(60, 16, 3, seed=2)
        assert x.min() >= 0.0 and x.max() <= 1.0
        assert np.unique(y).size == 3

    def test_binary01_is_sparse_binary(self):
        x, y = binary01_features(40, 50, 2, active_per_row=7, seed=3)
        assert isinstance(x, CSRMatrix)
        assert np.all(x.data == 1.0)
        assert x.nnz == 40 * 7

    def test_tfidf_rows_normalised(self):
        x, _ = tfidf_like(30, 200, 4, nnz_per_row=20, seed=4)
        assert isinstance(x, CSRMatrix)
        assert np.allclose(x.row_norms_sq(), 1.0)
        assert np.all(x.data > 0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            gaussian_blobs(1, 4, 2)
        with pytest.raises(ValidationError):
            gaussian_blobs(10, 0, 2)
        with pytest.raises(ValidationError):
            gaussian_blobs(10, 4, 1)
        with pytest.raises(ValidationError):
            binary01_features(10, 5, 2, active_per_row=9)
        with pytest.raises(ValidationError):
            tfidf_like(10, 5, 2, nnz_per_row=9)

    def test_classes_are_separable_enough_to_learn(self):
        """Each generator must produce genuinely learnable structure."""
        from repro import GMPSVC

        for maker, kwargs in [
            (image_like, {"noise": 0.15}),
            (binary01_features, {"flip_probability": 0.1}),
            (tfidf_like, {"vocabulary_overlap": 0.2}),
        ]:
            x, y = maker(120, 64, 2, seed=5, **kwargs)
            clf = GMPSVC(C=10.0, gamma=0.5, working_set_size=32).fit(x, y)
            assert clf.score(x, y) > 0.9


class TestSplit:
    def test_split_sizes(self, rng):
        x = rng.normal(size=(40, 3))
        y = np.arange(40) % 2
        xtr, ytr, xte, yte = train_test_split(x, y, test_fraction=0.25, seed=0)
        assert xtr.shape[0] == 30 and xte.shape[0] == 10
        assert ytr.size == 30 and yte.size == 10

    def test_split_is_a_partition(self, rng):
        x = rng.normal(size=(20, 2))
        y = np.arange(20)
        xtr, ytr, xte, yte = train_test_split(x, y, test_fraction=0.3, seed=1)
        assert sorted(np.concatenate([ytr, yte]).tolist()) == list(range(20))

    def test_split_preserves_sparse_format(self):
        x, y = binary01_features(20, 30, 2, active_per_row=5, seed=2)
        xtr, _, xte, _ = train_test_split(x, y, test_fraction=0.2, seed=0)
        assert isinstance(xtr, CSRMatrix) and isinstance(xte, CSRMatrix)

    def test_bad_fraction(self, rng):
        with pytest.raises(ValidationError):
            train_test_split(rng.normal(size=(5, 2)), np.zeros(5), test_fraction=1.5)


class TestRegistry:
    def test_nine_datasets_match_paper_table2(self):
        assert len(DATASETS) == 9
        expected_classes = {
            "adult": 2, "rcv1": 2, "real-sim": 2, "webdata": 2,
            "cifar-10": 10, "connect-4": 3, "mnist": 10, "mnist8m": 10,
            "news20": 20,
        }
        for name, k in expected_classes.items():
            assert DATASETS[name].n_classes == k

    def test_paper_hyperparameters(self):
        assert DATASETS["adult"].penalty == 100.0
        assert DATASETS["adult"].gamma == 0.5
        assert DATASETS["mnist8m"].penalty == 1000.0
        assert DATASETS["mnist8m"].gamma == 0.006
        assert DATASETS["news20"].penalty == 4.0

    def test_scale_factors_recorded(self):
        for spec in DATASETS.values():
            assert spec.scale_factor > 1.0
            assert spec.paper_cardinality > spec.cardinality

    def test_dataset_names_filters(self):
        assert len(dataset_names(binary_only=True)) == 4
        assert len(dataset_names(multiclass_only=True)) == 5
        assert dataset_names() == list(DATASETS)

    def test_load_dataset_shapes(self):
        ds = load_dataset("adult")
        assert ds.n_train == pytest.approx(DATASETS["adult"].cardinality, abs=2)
        assert ds.x_train.shape[1] == 123
        assert np.unique(ds.y_train).size == 2

    def test_load_dataset_cached(self):
        assert load_dataset("adult") is load_dataset("adult")

    def test_unknown_dataset(self):
        with pytest.raises(ValidationError):
            load_dataset("imagenet")

    def test_multiclass_dataset_has_all_classes_in_both_splits(self):
        ds = load_dataset("connect-4")
        assert np.unique(ds.y_train).size == 3
        assert np.unique(ds.y_test).size == 3


class TestLibsvmLoader:
    def test_split_mode(self, tmp_path, rng):
        from repro.data import load_libsvm_dataset
        from repro.sparse import CSRMatrix, dump_libsvm

        dense = rng.normal(size=(40, 6)) * (rng.random((40, 6)) < 0.6)
        labels = np.arange(40) % 2
        path = tmp_path / "toy.svm"
        dump_libsvm(CSRMatrix.from_dense(dense), labels, path)
        ds = load_libsvm_dataset(path, penalty=4.0, gamma=0.5, test_fraction=0.25)
        assert ds.n_train == 30 and ds.n_test == 10
        assert ds.spec.penalty == 4.0
        assert ds.spec.name == "toy"

    def test_train_test_pair_aligns_features(self, tmp_path):
        from repro.data import load_libsvm_dataset

        train = tmp_path / "train.svm"
        test = tmp_path / "test.svm"
        train.write_text("1 1:1.0\n-1 2:1.0\n")
        test.write_text("1 5:2.0\n")
        ds = load_libsvm_dataset(train, test_path=test)
        assert ds.x_train.shape[1] == ds.x_test.shape[1] == 5

    def test_single_class_rejected(self, tmp_path):
        from repro.data import load_libsvm_dataset

        path = tmp_path / "one.svm"
        path.write_text("1 1:1.0\n1 2:1.0\n1 1:2.0\n1 2:0.5\n")
        with pytest.raises(ValidationError):
            load_libsvm_dataset(path)
