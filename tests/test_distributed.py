"""Tests for repro.distributed: cluster substrate, placement, sharded
training and sharded inference.

The load-bearing property throughout: distribution changes only the
simulated timeline — every device count and placement strategy must
reproduce the single-device models, decision values and probabilities
*bitwise*.
"""

import json
import warnings

import numpy as np
import pytest

from repro.core.predictor import PredictorConfig, predict_proba_model
from repro.core.trainer import TrainerConfig, train_multiclass
from repro.data import gaussian_blobs
from repro.distributed import (
    ClusterSpec,
    DevicePool,
    InterconnectSpec,
    ShardedInferenceRouter,
    plan_placement,
    train_multiclass_sharded,
)
from repro.exceptions import NotFittedError, ValidationError
from repro.gpusim.device import scaled_tesla_p100, xeon_e5_2640v4
from repro.kernels.functions import kernel_from_name
from repro.serving import InferenceSession
from repro.telemetry import Tracer
from repro.telemetry.schema import REPORT_SCHEMA_VERSION

DEVICE_COUNTS = (1, 2, 4)
PLACEMENTS = ("affinity", "round_robin")


def _workload(k=4, per=22, n_features=5, seed=7):
    x, y = gaussian_blobs(n=k * per, n_features=n_features, n_classes=k, seed=seed)
    kernel = kernel_from_name("gaussian", gamma=0.4)
    config = TrainerConfig(device=scaled_tesla_p100(), working_set_size=24)
    return x, y, kernel, config


def _records_equal(model_a, model_b) -> bool:
    if len(model_a.records) != len(model_b.records):
        return False
    for a, b in zip(model_a.records, model_b.records):
        if not (
            np.array_equal(a.global_sv_indices, b.global_sv_indices)
            and np.array_equal(a.coefficients, b.coefficients)
            and a.bias == b.bias
        ):
            return False
    return True


@pytest.fixture(scope="module")
def trained():
    """One single-device model plus its workload, shared by parity tests."""
    x, y, kernel, config = _workload()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model, report = train_multiclass(config, x, y, kernel, 1.0)
    return x, y, kernel, config, model, report


class TestInterconnectSpec:
    def test_charges_split_latency_and_bandwidth(self):
        spec = InterconnectSpec(
            host_latency_s=1e-5, host_bandwidth_gbps=10.0,
            peer_latency_s=2e-6, peer_bandwidth_gbps=40.0,
        )
        host = spec.host_charge(10_000_000_000)
        assert host.latency_s == 1e-5
        assert host.compute_s == pytest.approx(1.0)
        peer = spec.peer_charge(40_000_000_000)
        assert peer.latency_s == 2e-6
        assert peer.compute_s == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            InterconnectSpec(host_latency_s=-1.0)
        with pytest.raises(ValidationError):
            InterconnectSpec(peer_bandwidth_gbps=0.0)


class TestClusterSpec:
    def test_name_carries_device_count(self):
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=4)
        assert cluster.name.startswith("4x ")

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValidationError):
            ClusterSpec(device=scaled_tesla_p100(), n_devices=0)

    def test_rejects_cpu_devices(self):
        with pytest.raises(ValidationError, match="kind"):
            ClusterSpec(device=xeon_e5_2640v4(), n_devices=2)


class TestHierarchicalCluster:
    def test_node_major_device_spread(self):
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=6, n_nodes=2
        )
        assert cluster.devices_per_node == 3
        assert [cluster.node_of(d) for d in range(6)] == [0, 0, 0, 1, 1, 1]
        assert cluster.same_node(0, 2)
        assert not cluster.same_node(2, 3)

    def test_name_carries_topology(self):
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=4, n_nodes=2
        )
        assert cluster.name.startswith("2x2 ")

    def test_uneven_spread_rejected(self):
        with pytest.raises(ValidationError, match="evenly"):
            ClusterSpec(device=scaled_tesla_p100(), n_devices=4, n_nodes=3)
        with pytest.raises(ValidationError):
            ClusterSpec(device=scaled_tesla_p100(), n_devices=2, n_nodes=0)

    def test_inter_node_charge(self):
        spec = InterconnectSpec(
            inter_node_latency_s=1e-5, inter_node_bandwidth_gbps=10.0
        )
        charge = spec.inter_node_charge(10_000_000_000)
        assert charge.latency_s == 1e-5
        assert charge.compute_s == pytest.approx(1.0)
        with pytest.raises(ValidationError):
            InterconnectSpec(inter_node_bandwidth_gbps=0.0)

    def test_pool_link_tiers_and_byte_ledger(self):
        from repro.distributed.cluster import HOST

        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=4, n_nodes=2
        )
        pool = DevicePool(cluster)
        assert pool.link_tier(HOST, 0) == "host"
        assert pool.link_tier(0, 1) == "intra"
        assert pool.link_tier(1, 2) == "inter"
        pool.host_to_device(0, 100)
        pool.device_to_device(0, 1, 50)
        pool.device_to_device(1, 3, 25)
        assert pool.tier_bytes == {"host": 100, "intra": 50, "inter": 25}

    def test_cross_node_copy_is_slower(self):
        cluster = ClusterSpec(
            device=scaled_tesla_p100(), n_devices=4, n_nodes=2
        )
        intra_pool = DevicePool(cluster)
        inter_pool = DevicePool(cluster)
        intra_pool.device_to_device(0, 1, 1_000_000)
        inter_pool.device_to_device(0, 2, 1_000_000)
        assert (
            inter_pool.engine(0).clock.elapsed_s
            > intra_pool.engine(0).clock.elapsed_s
        )

    def test_flat_cluster_has_no_inter_tier(self):
        pool = DevicePool(ClusterSpec(device=scaled_tesla_p100(), n_devices=4))
        pool.device_to_device(0, 3, 1_000)
        assert pool.tier_bytes == {"host": 0, "intra": 1_000, "inter": 0}


class TestDevicePool:
    def _pool(self, n=3):
        return DevicePool(ClusterSpec(device=scaled_tesla_p100(), n_devices=n))

    def test_engines_are_independent(self):
        pool = self._pool()
        pool.host_to_device(1, 1000)
        assert pool.engine(1).clock.elapsed_s > 0.0
        assert pool.engine(0).clock.elapsed_s == 0.0
        assert pool.engine(2).clock.elapsed_s == 0.0

    def test_ledger_tracks_links(self):
        pool = self._pool()
        pool.host_to_device(0, 100)
        pool.device_to_device(0, 1, 50)
        pool.device_to_host(1, 25)
        assert pool.total_transfer_bytes == 175
        assert pool.device_transfer_bytes(0) == 150
        assert pool.device_transfer_bytes(1) == 75
        assert pool.device_transfer_bytes(2) == 0

    def test_peer_copy_charges_both_endpoints(self):
        pool = self._pool()
        pool.device_to_device(0, 2, 4096)
        assert pool.engine(0).clock.elapsed_s > 0.0
        assert pool.engine(2).clock.elapsed_s > 0.0
        assert pool.engine(1).clock.elapsed_s == 0.0
        assert pool.engine(0).counters.pcie_bytes == 4096

    def test_same_device_copy_is_free(self):
        pool = self._pool()
        pool.device_to_device(1, 1, 10**9)
        assert pool.total_transfer_bytes == 0
        assert pool.engine(1).clock.elapsed_s == 0.0

    def test_zero_byte_transfer_is_free(self):
        pool = self._pool()
        pool.host_to_device(0, 0)
        assert pool.total_transfer_bytes == 0
        assert pool.engine(0).clock.elapsed_s == 0.0

    def test_validation(self):
        pool = self._pool()
        with pytest.raises(ValidationError):
            pool.host_to_device(3, 10)
        with pytest.raises(ValidationError):
            pool.host_to_device(0, -1)
        with pytest.raises(ValidationError):
            pool.engine(-1)

    def test_makespan_and_utilization(self):
        pool = self._pool(2)
        pool.host_to_device(0, 10_000_000)
        pool.host_to_device(1, 5_000_000)
        assert pool.makespan_s == pool.engine(0).clock.elapsed_s
        assert pool.utilization(0) == pytest.approx(1.0)
        assert 0.0 < pool.utilization(1) < 1.0


class TestPlacement:
    def _problems(self, k):
        from types import SimpleNamespace

        return [
            SimpleNamespace(s=s, t=t, n=10 + s + t)
            for s in range(k)
            for t in range(s + 1, k)
        ]

    def test_every_problem_assigned_once(self):
        problems = self._problems(6)
        for strategy in PLACEMENTS:
            plan = plan_placement(problems, 4, strategy=strategy)
            assert len(plan.assignments) == len(problems)
            assert sorted(
                i for group in plan.device_problems for i in group
            ) == list(range(len(problems)))

    def test_round_robin_layout(self):
        plan = plan_placement(self._problems(4), 3, strategy="round_robin")
        assert plan.assignments == [i % 3 for i in range(6)]

    def test_device_problems_stay_in_global_order(self):
        plan = plan_placement(self._problems(6), 4)
        for group in plan.device_problems:
            assert group == sorted(group)

    def test_affinity_balances_load(self):
        plan = plan_placement(self._problems(8), 4, strategy="affinity")
        assert plan.balance < 1.5

    def test_affinity_colocates_class_blocks(self):
        problems = self._problems(8)
        affinity = plan_placement(problems, 4, strategy="affinity")
        naive = plan_placement(problems, 4, strategy="round_robin")
        assert sum(
            len(classes) for classes in affinity.device_classes
        ) <= sum(len(classes) for classes in naive.device_classes)

    def test_deterministic(self):
        problems = self._problems(7)
        a = plan_placement(problems, 3)
        b = plan_placement(problems, 3)
        assert a.assignments == b.assignments

    def test_single_device_takes_everything(self):
        plan = plan_placement(self._problems(5), 1)
        assert set(plan.assignments) == {0}
        assert plan.balance == pytest.approx(1.0)

    def test_summary_is_json_ready(self):
        plan = plan_placement(self._problems(5), 2)
        parsed = json.loads(json.dumps(plan.summary()))
        assert parsed["strategy"] == "affinity"
        assert parsed["n_devices"] == 2
        assert len(parsed["assignments"]) == 10

    def test_validation(self):
        with pytest.raises(ValidationError):
            plan_placement(self._problems(4), 0)
        with pytest.raises(ValidationError, match="strategy"):
            plan_placement(self._problems(4), 2, strategy="random")


class TestPlacementProperties:
    """Seeded matrix: the partition invariants hold for every shape.

    For any class count x device count x strategy x seeded size draw,
    a placement is a *partition*: every problem lands on exactly one
    in-range device, loads add up exactly, and the result is a pure
    function of its inputs.
    """

    @staticmethod
    def _random_problems(k, seed):
        from types import SimpleNamespace

        rng = np.random.default_rng(seed)
        return [
            SimpleNamespace(s=s, t=t, n=int(rng.integers(1, 500)))
            for s in range(k)
            for t in range(s + 1, k)
        ]

    @pytest.mark.parametrize("strategy", sorted(PLACEMENTS))
    @pytest.mark.parametrize("n_devices", (1, 2, 3, 5, 8))
    @pytest.mark.parametrize("n_classes", (2, 3, 5, 7))
    def test_partition_invariants(self, n_classes, n_devices, strategy):
        problems = self._random_problems(n_classes, seed=n_classes * 31)
        plan = plan_placement(problems, n_devices, strategy=strategy)

        # Complete and duplicate-free: each problem on exactly one device.
        assert len(plan.assignments) == len(problems)
        assert all(0 <= d < n_devices for d in plan.assignments)
        flat = sorted(i for group in plan.device_problems for i in group)
        assert flat == list(range(len(problems)))

        # Loads are additive: each device carries exactly the summed
        # cost of its own problems (cost probed per-problem via a
        # single-device plan, so the formula stays an implementation
        # detail).
        cost = [
            plan_placement([p], 1, strategy=strategy).device_load[0]
            for p in problems
        ]
        for device, group in enumerate(plan.device_problems):
            assert plan.device_load[device] == pytest.approx(
                sum(cost[i] for i in group)
            )

        # Each device's class set is exactly its problems' classes.
        for device, group in enumerate(plan.device_problems):
            classes = set()
            for i in group:
                classes.update((problems[i].s, problems[i].t))
            assert set(plan.device_classes[device]) == classes

        # Balance is max/mean over non-empty devices: never below 1.
        assert plan.balance >= 1.0 or not problems

    @pytest.mark.parametrize("strategy", sorted(PLACEMENTS))
    @pytest.mark.parametrize("seed", range(6))
    def test_seeded_determinism(self, seed, strategy):
        problems = self._random_problems(5, seed=seed)
        a = plan_placement(problems, 3, strategy=strategy)
        b = plan_placement(
            self._random_problems(5, seed=seed), 3, strategy=strategy
        )
        assert a.assignments == b.assignments
        assert a.device_load == b.device_load

    def test_more_devices_than_problems_leaves_idle_devices(self):
        problems = self._random_problems(2, seed=1)  # a single pair
        for strategy in PLACEMENTS:
            plan = plan_placement(problems, 4, strategy=strategy)
            assert len(plan.assignments) == 1
            empty = [g for g in plan.device_problems if not g]
            assert len(empty) == 3


class TestShardedTrainingParity:
    @pytest.mark.parametrize("n_devices", DEVICE_COUNTS)
    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_models_bitwise_equal_to_single_device(
        self, trained, n_devices, placement
    ):
        x, y, kernel, config, model_single, _ = trained
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=n_devices)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model, _ = train_multiclass_sharded(
                config, cluster, x, y, kernel, 1.0, placement=placement
            )
        assert _records_equal(model_single, model)
        assert np.array_equal(
            np.asarray(model_single.sv_pool.pool_data),
            np.asarray(model.sv_pool.pool_data),
        )

    def test_probabilities_bitwise_equal_to_single_device(self, trained):
        x, y, kernel, config, model_single, _ = trained
        x_test = x[::3] + 0.25
        predictor = PredictorConfig(device=scaled_tesla_p100())
        expected, _ = predict_proba_model(predictor, model_single, x_test)
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model, _ = train_multiclass_sharded(config, cluster, x, y, kernel, 1.0)
        actual, _ = predict_proba_model(predictor, model, x_test)
        assert np.array_equal(expected, actual)

    def test_metadata_records_cluster(self, trained):
        x, y, kernel, config, _, _ = trained
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model, _ = train_multiclass_sharded(
                config, cluster, x, y, kernel, 1.0, placement="round_robin"
            )
        assert model.metadata["cluster_devices"] == 2
        assert model.metadata["placement"] == "round_robin"


class TestClusterTrainingReport:
    @pytest.fixture(scope="class")
    def run(self, trained):
        x, y, kernel, config, _, _ = trained
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return train_multiclass_sharded(config, cluster, x, y, kernel, 1.0)

    def test_makespan_is_busiest_device(self, run):
        _, report = run
        busiest = max(
            entry["simulated_seconds"] for entry in report.per_device
        )
        assert report.simulated_seconds == pytest.approx(busiest)

    def test_utilization_normalised_to_makespan(self, run):
        _, report = run
        utils = [entry["utilization"] for entry in report.per_device]
        assert max(utils) == pytest.approx(1.0)
        assert all(0.0 < u <= 1.0 for u in utils)

    def test_cluster_speedup_is_busy_over_makespan(self, run):
        _, report = run
        assert report.cluster_speedup == pytest.approx(
            report.total_busy_seconds / report.simulated_seconds
        )
        assert 1.0 <= report.cluster_speedup <= 2.0

    def test_per_device_work_sums_to_totals(self, run):
        _, report = run
        assert (
            sum(entry["n_svms"] for entry in report.per_device)
            == report.n_binary_svms
        )
        assert (
            sum(entry["iterations"] for entry in report.per_device)
            == report.total_iterations
        )

    def test_transfers_include_the_merge(self, run):
        _, report = run
        assert report.merge_bytes > 0
        assert report.transfer_bytes_total > report.merge_bytes

    def test_json_round_trip(self, run):
        _, report = run
        parsed = json.loads(report.to_json())
        assert parsed["schema_version"] == REPORT_SCHEMA_VERSION
        assert parsed["kind"] == "cluster_training_report"
        assert parsed["n_devices"] == 2
        assert parsed["placement"]["strategy"] == "affinity"
        assert len(parsed["per_device"]) == 2

    def test_rejects_classic_solver(self, trained):
        x, y, kernel, config, _, _ = trained
        from dataclasses import replace

        bad = replace(config, solver="classic")
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        with pytest.raises(ValidationError, match="classic"):
            train_multiclass_sharded(bad, cluster, x, y, kernel, 1.0)

    def test_rejects_ova_decomposition(self, trained):
        x, y, kernel, config, _, _ = trained
        from dataclasses import replace

        bad = replace(config, decomposition="ova")
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        with pytest.raises(ValidationError, match="ova"):
            train_multiclass_sharded(bad, cluster, x, y, kernel, 1.0)


class TestClusterTelemetry:
    def test_span_names_cover_the_cluster_run(self, trained):
        x, y, kernel, config, _, _ = trained
        from dataclasses import replace

        tracer = Tracer()
        traced = replace(config, tracer=tracer)
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            train_multiclass_sharded(traced, cluster, x, y, kernel, 1.0)
        names = [r["name"] for r in tracer.to_records()]
        assert "train_cluster" in names
        assert names.count("cluster_wave") == 2
        assert names.count("shard_merge") == 1
        assert names.count("transfer") >= 3  # 2 host copies + the merge

    def test_root_span_summarises_the_run(self, trained):
        x, y, kernel, config, _, _ = trained
        from dataclasses import replace

        tracer = Tracer()
        traced = replace(config, tracer=tracer)
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            _, report = train_multiclass_sharded(
                traced, cluster, x, y, kernel, 1.0
            )
        (root,) = [
            r for r in tracer.to_records() if r["name"] == "train_cluster"
        ]
        assert root["attrs"]["n_devices"] == 2
        assert root["attrs"]["cluster_speedup"] == pytest.approx(
            report.cluster_speedup
        )


class TestShardedInferenceRouter:
    @pytest.fixture(scope="class")
    def served(self, trained):
        x, y, kernel, config, model, _ = trained
        x_test = x[::4] - 0.125
        session = InferenceSession(model)
        return model, x_test, session

    @pytest.mark.parametrize("strategy", ("replicated", "pair_partitioned"))
    @pytest.mark.parametrize("n_devices", (1, 2, 4))
    def test_outputs_bitwise_equal_to_session(
        self, served, strategy, n_devices
    ):
        model, x_test, session = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=n_devices)
        router = ShardedInferenceRouter(model, cluster, strategy=strategy)
        assert np.array_equal(
            session.predict_proba(x_test), router.predict_proba(x_test)
        )
        assert np.array_equal(
            session.decision_function(x_test),
            router.decision_function(x_test),
        )
        assert np.array_equal(session.predict(x_test), router.predict(x_test))

    def test_partitioning_shrinks_per_device_memory(self, served):
        model, _, _ = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=4)
        replicated = ShardedInferenceRouter(
            model, cluster, strategy="replicated"
        )
        partitioned = ShardedInferenceRouter(
            model, cluster, strategy="pair_partitioned"
        )
        full = model.sv_pool.pool_nbytes
        assert all(b == full for b in replicated.memory_per_device_bytes())
        assert all(b < full for b in partitioned.memory_per_device_bytes())

    def test_round_robin_routing_spreads_sessions(self, served):
        model, x_test, session = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        router = ShardedInferenceRouter(model, cluster, strategy="replicated")
        router.predict_proba(x_test)
        router.predict_proba(x_test)
        serve_seconds = [
            s.stats.serve_simulated_s for s in router.sessions
        ]
        assert all(seconds > 0.0 for seconds in serve_seconds)

    def test_micro_batched_requests_match_one_shot(self, served):
        model, x_test, session = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        router = ShardedInferenceRouter(model, cluster, strategy="replicated")
        rows = [x_test[i : i + 1] for i in range(6)]
        handles = [router.submit(row) for row in rows]
        drained = router.drain()
        assert drained == handles
        for handle, row in zip(drained, rows):
            assert np.array_equal(handle.result, session.predict_proba(row))

    def test_partitioned_router_rejects_batching(self, served):
        model, x_test, _ = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        router = ShardedInferenceRouter(
            model, cluster, strategy="pair_partitioned"
        )
        with pytest.raises(ValidationError, match="replicated"):
            router.submit(x_test[:1])
        with pytest.raises(ValidationError, match="replicated"):
            router.drain()

    def test_partitioned_reduce_charges_the_interconnect(self, served):
        model, x_test, _ = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        router = ShardedInferenceRouter(
            model, cluster, strategy="pair_partitioned"
        )
        router.predict_proba(x_test)
        assert router.pool.total_transfer_bytes > 0
        assert router.simulated_seconds > 0.0

    def test_validation(self, served):
        model, _, _ = served
        cluster = ClusterSpec(device=scaled_tesla_p100(), n_devices=2)
        with pytest.raises(ValidationError, match="strategy"):
            ShardedInferenceRouter(model, cluster, strategy="sliced")
        with pytest.raises(NotFittedError):
            ShardedInferenceRouter(object(), cluster)


class TestShardedCLI:
    def test_devices_flag_trains_identical_model(self, tmp_path, trained):
        from repro import load_model
        from repro.cli import train_main
        from repro.sparse import CSRMatrix, dump_libsvm

        x, y, _, _, model_single, _ = trained
        train_file = tmp_path / "train.svm"
        dump_libsvm(CSRMatrix.from_dense(x), y, train_file)
        single_path = tmp_path / "single.model"
        sharded_path = tmp_path / "sharded.model"
        flags = ["-c", "1.0", "-g", "0.4", "--working-set", "24", "-q"]
        assert train_main([str(train_file), str(single_path)] + flags) == 0
        assert (
            train_main(
                [str(train_file), str(sharded_path)]
                + flags
                + ["--devices", "3", "--placement", "round_robin"]
            )
            == 0
        )
        assert _records_equal(
            load_model(single_path), load_model(sharded_path)
        )

    def test_devices_flag_rejects_cpu_systems(self, tmp_path, trained):
        from repro.cli import train_main
        from repro.sparse import CSRMatrix, dump_libsvm

        x, y, _, _, _, _ = trained
        train_file = tmp_path / "train.svm"
        dump_libsvm(CSRMatrix.from_dense(x), y, train_file)
        assert (
            train_main(
                [str(train_file), "--system", "libsvm", "--devices", "2", "-q"]
            )
            == 1
        )

    def test_fault_seed_flag_recovers_identical_model(
        self, tmp_path, trained, capsys
    ):
        from repro import load_model
        from repro.cli import train_main
        from repro.sparse import CSRMatrix, dump_libsvm

        x, y, _, _, _, _ = trained
        train_file = tmp_path / "train.svm"
        dump_libsvm(CSRMatrix.from_dense(x), y, train_file)
        single_path = tmp_path / "single.model"
        faulted_path = tmp_path / "faulted.model"
        flags = ["-c", "1.0", "-g", "0.4", "--working-set", "24"]
        assert (
            train_main([str(train_file), str(single_path), "-q"] + flags) == 0
        )
        # Seed 1 draws a device loss at t=0 on a 3-device cluster, so
        # the recovery path runs; checkpoints land in --checkpoint-dir.
        assert (
            train_main(
                [str(train_file), str(faulted_path)]
                + flags
                + [
                    "--devices", "3", "--fault-seed", "1",
                    "--checkpoint-every", "2",
                    "--checkpoint-dir", str(tmp_path / "ckpts"),
                ]
            )
            == 0
        )
        assert _records_equal(
            load_model(single_path), load_model(faulted_path)
        )
        out = capsys.readouterr().out
        assert "LOST" in out and "recovered" in out
        assert list((tmp_path / "ckpts").glob("ckpt-d*-w*.json"))

    def test_fault_flags_require_devices(self, tmp_path, trained):
        from repro.cli import train_main
        from repro.sparse import CSRMatrix, dump_libsvm

        x, y, _, _, _, _ = trained
        train_file = tmp_path / "train.svm"
        dump_libsvm(CSRMatrix.from_dense(x), y, train_file)
        assert train_main([str(train_file), "--fault-seed", "1", "-q"]) == 1
        assert (
            train_main(
                [
                    str(train_file), "-q",
                    "--devices", "2", "--checkpoint-every", "0",
                ]
            )
            == 1
        )
