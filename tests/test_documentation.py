"""Documentation coverage: every public item carries a doc comment.

The library's contract includes docstrings on every public module, class,
function and method.  This test walks the installed package and enforces
it, so documentation debt fails CI instead of accumulating.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "._" in info.name:
            continue
        yield importlib.import_module(info.name)


def is_public(name: str) -> bool:
    return not name.startswith("_")


def test_every_public_module_has_a_docstring():
    missing = [
        module.__name__
        for module in iter_public_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert missing == []


def test_every_public_class_and_function_is_documented():
    missing: list[str] = []
    for module in iter_public_modules():
        for name, item in vars(module).items():
            if not is_public(name):
                continue
            if not (inspect.isclass(item) or inspect.isfunction(item)):
                continue
            if getattr(item, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (inspect.getdoc(item) or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == []


def test_every_public_method_is_documented():
    missing: list[str] = []
    for module in iter_public_modules():
        for class_name, cls in vars(module).items():
            if not is_public(class_name) or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != module.__name__:
                continue
            for method_name, method in vars(cls).items():
                if not is_public(method_name):
                    continue
                if not callable(method) and not isinstance(
                    method, (property, classmethod, staticmethod)
                ):
                    continue
                target = method
                if isinstance(method, property):
                    target = method.fget
                elif isinstance(method, (classmethod, staticmethod)):
                    target = method.__func__
                if not callable(target):
                    continue
                if not (inspect.getdoc(target) or "").strip():
                    missing.append(
                        f"{module.__name__}.{class_name}.{method_name}"
                    )
    assert missing == []
