"""Unit tests for the public estimator API (GMPSVC / SVC)."""

import numpy as np
import pytest

from repro import GMPSVC, SVC, NotFittedError, ValidationError
from repro.data import binary01_features, gaussian_blobs
from repro.gpusim import xeon_e5_2640v4


@pytest.fixture(scope="module")
def three_class():
    x, y = gaussian_blobs(150, 6, 3, seed=0)
    return x, y + 10  # non-contiguous labels on purpose


@pytest.fixture(scope="module")
def fitted_gmp(three_class):
    x, y = three_class
    return GMPSVC(C=10.0, gamma=0.4, working_set_size=32).fit(x, y)


class TestGMPSVC:
    def test_predict_returns_original_labels(self, fitted_gmp, three_class):
        x, y = three_class
        predictions = fitted_gmp.predict(x)
        assert set(np.unique(predictions)).issubset({10, 11, 12})
        assert fitted_gmp.score(x, y) > 0.95

    def test_predict_proba_simplex(self, fitted_gmp, three_class):
        proba = fitted_gmp.predict_proba(three_class[0])
        assert proba.shape == (150, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_predict_matches_argmax_proba(self, fitted_gmp, three_class):
        x, _ = three_class
        proba = fitted_gmp.predict_proba(x)
        labels = fitted_gmp.predict(x)
        assert np.array_equal(labels, fitted_gmp.classes_[np.argmax(proba, axis=1)])

    def test_decision_function_shape(self, fitted_gmp, three_class):
        decisions = fitted_gmp.decision_function(three_class[0])
        assert decisions.shape == (150, 3)  # k(k-1)/2 pairs

    def test_reports_populated(self, fitted_gmp):
        assert fitted_gmp.training_report_.simulated_seconds > 0
        assert fitted_gmp.training_report_.n_binary_svms == 3
        assert fitted_gmp.prediction_report_ is not None

    def test_unfitted_errors(self):
        clf = GMPSVC()
        with pytest.raises(NotFittedError):
            clf.predict(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            clf.predict_proba(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            clf.save("/tmp/nothing.txt")

    def test_feature_count_checked_at_predict(self, fitted_gmp):
        with pytest.raises(ValidationError, match="features"):
            fitted_gmp.predict(np.ones((2, 99)))

    def test_label_row_mismatch_at_fit(self):
        with pytest.raises(ValidationError):
            GMPSVC().fit(np.ones((4, 2)), np.ones(3))

    def test_nan_input_rejected(self):
        x = np.ones((4, 2))
        x[0, 0] = np.nan
        with pytest.raises(ValidationError):
            GMPSVC().fit(x, [0, 0, 1, 1])

    def test_probability_false_uses_voting(self, three_class):
        x, y = three_class
        clf = GMPSVC(C=10.0, gamma=0.4, working_set_size=32, probability=False)
        clf.fit(x, y)
        with pytest.raises(NotFittedError):
            clf.predict_proba(x)
        assert clf.score(x, y) > 0.95

    def test_gamma_default_is_one_over_features(self, three_class):
        x, y = three_class
        clf = GMPSVC(C=10.0, working_set_size=32).fit(x, y)
        assert clf.model_.kernel.params()["gamma"] == pytest.approx(1 / 6)

    def test_linear_and_polynomial_kernels(self, three_class):
        x, y = three_class
        for kernel in ("linear", "polynomial", "sigmoid"):
            clf = GMPSVC(C=1.0, kernel=kernel, gamma=0.3, working_set_size=32)
            clf.fit(x, y)
            assert clf.predict(x).shape == (150,)

    def test_unknown_kernel_rejected(self, three_class):
        x, y = three_class
        with pytest.raises(ValidationError):
            GMPSVC(kernel="quantum").fit(x, y)

    def test_custom_device(self, three_class):
        x, y = three_class
        clf = GMPSVC(
            C=10.0, gamma=0.4, working_set_size=32, device=xeon_e5_2640v4(8)
        ).fit(x, y)
        assert "Xeon" in clf.training_report_.device_name

    def test_sparse_input(self):
        x, y = binary01_features(100, 50, 3, active_per_row=8, seed=1)
        clf = GMPSVC(C=10.0, gamma=0.5, working_set_size=32).fit(x, y)
        assert clf.score(x, y) > 0.9
        proba = clf.predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_multiclass_concurrency_reported(self, three_class):
        x, y = three_class
        clf = GMPSVC(C=10.0, gamma=0.4, working_set_size=32).fit(x, y)
        assert clf.training_report_.max_concurrency >= 2
        clf_seq = GMPSVC(
            C=10.0, gamma=0.4, working_set_size=32, concurrent_svms=False
        ).fit(x, y)
        assert clf_seq.training_report_.max_concurrency == 1
        assert (
            clf_seq.training_report_.simulated_seconds
            > clf.training_report_.simulated_seconds
        )


class TestSVC:
    @pytest.fixture(scope="class")
    def binary(self):
        x, y = gaussian_blobs(120, 5, 2, seed=3)
        return x, np.where(y == 0, -1, 1)

    def test_binary_fit_predict(self, binary):
        x, y = binary
        clf = SVC(C=10.0, gamma=0.4, working_set_size=32).fit(x, y)
        assert clf.score(x, y) > 0.95
        assert clf.decision_function(x).ndim == 1

    def test_binary_accessors(self, binary):
        x, y = binary
        clf = SVC(C=10.0, gamma=0.4, working_set_size=32).fit(x, y)
        assert clf.n_support_ == clf.support_.size
        assert clf.dual_coef_.size == clf.n_support_
        assert isinstance(clf.intercept_, float)

    def test_decision_sign_matches_prediction(self, binary):
        x, y = binary
        clf = SVC(C=10.0, gamma=0.4, working_set_size=32, probability=False).fit(x, y)
        decisions = clf.decision_function(x)
        predictions = clf.predict(x)
        # Positive decision votes for the first (sorted) class, -1.
        assert np.array_equal(predictions, np.where(decisions >= 0, -1, 1))

    def test_probability_consistent_with_decisions(self, binary):
        x, y = binary
        clf = SVC(C=10.0, gamma=0.4, working_set_size=32).fit(x, y)
        proba = clf.predict_proba(x)
        assert proba.shape == (120, 2)
        decisions = clf.decision_function(x)
        # P(first class) should increase with the decision value.
        order = np.argsort(decisions)
        assert np.all(np.diff(proba[order, 0]) >= -1e-12)

    def test_rejects_multiclass(self):
        x, y = gaussian_blobs(60, 4, 3, seed=1)
        with pytest.raises(ValidationError, match="binary-only"):
            SVC().fit(x, y)
