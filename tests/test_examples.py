"""Smoke tests: every shipped example runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_five_scripts():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_without_error(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=str(EXAMPLES_DIR.parent),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"


def test_quickstart_reports_core_quantities():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "test accuracy" in result.stdout
    assert "simulated training time" in result.stdout
    assert "kernel" in result.stdout  # the breakdown section
