"""Unit tests for the simulated clock and event counters."""

import pytest

from repro.exceptions import ValidationError
from repro.gpusim import OpCounters, SimClock, TimeCharge


class TestTimeCharge:
    def test_total(self):
        charge = TimeCharge(latency_s=1.0, compute_s=2.0)
        assert charge.total_s == 3.0

    def test_addition(self):
        total = TimeCharge(1.0, 2.0) + TimeCharge(0.5, 0.25)
        assert total.latency_s == 1.5 and total.compute_s == 2.25

    def test_scaled(self):
        charge = TimeCharge(1.0, 2.0).scaled(3.0)
        assert charge.latency_s == 3.0 and charge.compute_s == 6.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            TimeCharge(latency_s=-1.0)
        with pytest.raises(ValidationError):
            TimeCharge(1.0, 1.0).scaled(-1.0)


class TestSimClock:
    def test_charge_accumulates(self):
        clock = SimClock()
        clock.charge("a", TimeCharge(1.0, 2.0))
        clock.charge("a", TimeCharge(0.5, 0.5))
        assert clock.category_seconds("a") == 4.0
        assert clock.elapsed_s == 4.0
        assert clock.latency_s == 1.5
        assert clock.compute_s == 2.5

    def test_empty_category_rejected(self):
        with pytest.raises(ValidationError):
            SimClock().charge("", TimeCharge(1.0, 0.0))

    def test_breakdown(self):
        clock = SimClock()
        clock.charge("a", TimeCharge(1.0, 0.0))
        clock.charge("b", TimeCharge(0.0, 3.0))
        assert clock.breakdown() == {"a": 1.0, "b": 3.0}

    def test_fraction_breakdown_sums_to_one(self):
        clock = SimClock()
        clock.charge("a", TimeCharge(1.0, 0.0))
        clock.charge("b", TimeCharge(0.0, 3.0))
        fractions = clock.fraction_breakdown()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["b"] == pytest.approx(0.75)

    def test_fraction_breakdown_grouping(self):
        clock = SimClock()
        clock.charge("a", TimeCharge(1.0, 0.0))
        clock.charge("b", TimeCharge(1.0, 0.0))
        clock.charge("c", TimeCharge(2.0, 0.0))
        fractions = clock.fraction_breakdown(grouping={"a": "x", "b": "x"})
        assert fractions == {"x": pytest.approx(0.5), "c": pytest.approx(0.5)}

    def test_fraction_breakdown_empty(self):
        assert SimClock().fraction_breakdown() == {}

    def test_merge(self):
        a, b = SimClock(), SimClock()
        a.charge("x", TimeCharge(1.0, 1.0))
        b.charge("x", TimeCharge(0.0, 1.0))
        b.charge("y", TimeCharge(2.0, 0.0))
        a.merge(b)
        assert a.category_seconds("x") == 3.0
        assert a.category_seconds("y") == 2.0

    def test_merge_scaled(self):
        a, b = SimClock(), SimClock()
        b.charge("x", TimeCharge(2.0, 4.0))
        a.merge_scaled(b, 0.5)
        assert a.elapsed_s == pytest.approx(3.0)

    def test_merge_scaled_rejects_negative(self):
        with pytest.raises(ValidationError):
            SimClock().merge_scaled(SimClock(), -1.0)

    def test_copy_and_reset(self):
        clock = SimClock()
        clock.charge("a", TimeCharge(1.0, 0.0))
        clone = clock.copy()
        clock.reset()
        assert clock.elapsed_s == 0.0
        assert clone.elapsed_s == 1.0


class TestOpCounters:
    def test_record_and_totals(self):
        counters = OpCounters()
        counters.record(flops=10, bytes_read=4, bytes_written=2, kernel_launches=1)
        assert counters.flops == 10
        assert counters.bytes_total == 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OpCounters().record(flops=-1)

    def test_merge(self):
        a = OpCounters(flops=1)
        b = OpCounters(flops=2, pcie_bytes=5)
        a.merge(b)
        assert a.flops == 3 and a.pcie_bytes == 5

    def test_snapshot_and_since(self):
        counters = OpCounters()
        counters.record(flops=5)
        snap = counters.snapshot()
        counters.record(flops=7, kernel_launches=2)
        delta = counters.since(snap)
        assert delta.flops == 7 and delta.kernel_launches == 2
        assert snap.flops == 5  # snapshot unaffected

    def test_reset(self):
        counters = OpCounters(flops=5)
        counters.reset()
        assert counters.flops == 0


class TestSimClockSince:
    """Snapshot differencing used by the interleaved wave driver."""

    def test_since_returns_only_new_charges(self):
        clock = SimClock()
        clock.charge("kernel_values", TimeCharge(1.0, 2.0))
        snapshot = clock.copy()
        clock.charge("kernel_values", TimeCharge(0.5, 0.25))
        clock.charge("subproblem", TimeCharge(0.0, 3.0))
        delta = clock.since(snapshot)
        assert delta.category_seconds("kernel_values") == pytest.approx(0.75)
        assert delta.category_seconds("subproblem") == pytest.approx(3.0)
        assert delta.elapsed_s == pytest.approx(3.75)

    def test_since_of_unchanged_clock_is_empty(self):
        clock = SimClock()
        clock.charge("selection", TimeCharge(0.1, 0.2))
        delta = clock.since(clock.copy())
        assert delta.elapsed_s == 0.0
        assert list(delta.categories()) == []

    def test_since_splits_latency_and_compute(self):
        clock = SimClock()
        snapshot = clock.copy()
        clock.charge("f_update", TimeCharge(0.25, 1.5))
        delta = clock.since(snapshot)
        assert delta.latency_s == pytest.approx(0.25)
        assert delta.compute_s == pytest.approx(1.5)

    def test_snapshot_is_independent_of_later_charges(self):
        clock = SimClock()
        clock.charge("a", TimeCharge(1.0, 0.0))
        snapshot = clock.copy()
        clock.charge("a", TimeCharge(1.0, 0.0))
        assert snapshot.elapsed_s == pytest.approx(1.0)
