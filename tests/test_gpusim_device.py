"""Unit tests for device specifications."""

import pytest

from repro.exceptions import ValidationError
from repro.gpusim import DeviceSpec, scaled_tesla_p100, tesla_p100, xeon_e5_2640v4


class TestDeviceSpec:
    def test_rejects_bad_kind(self):
        with pytest.raises(ValidationError):
            DeviceSpec("x", "tpu", 1.0, 1.0, 1, 1e-6)

    def test_rejects_nonpositive_throughput(self):
        with pytest.raises(ValidationError):
            DeviceSpec("x", "gpu", 0.0, 1.0, 1, 1e-6)

    def test_rejects_zero_memory(self):
        with pytest.raises(ValidationError):
            DeviceSpec("x", "gpu", 1.0, 1.0, 0, 1e-6)

    def test_rejects_bad_threads(self):
        with pytest.raises(ValidationError):
            DeviceSpec("x", "cpu", 1.0, 1.0, 1, 1e-6, threads=0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValidationError):
            DeviceSpec("x", "cpu", 1.0, 1.0, 1, 1e-6, thread_efficiency=1.5)

    def test_single_thread_parallelism_is_one(self):
        spec = xeon_e5_2640v4(1)
        assert spec.effective_parallelism == 1.0
        assert spec.effective_gflops == spec.peak_gflops

    def test_threads_scale_throughput(self):
        one = xeon_e5_2640v4(1)
        forty = xeon_e5_2640v4(40)
        assert forty.effective_gflops > 5 * one.effective_gflops
        assert forty.effective_gflops < 40 * one.effective_gflops

    def test_cpu_bandwidth_capped_at_socket_maximum(self):
        many = xeon_e5_2640v4(64)
        assert many.effective_bandwidth_gbps == many.mem_bandwidth_gbps
        forty = xeon_e5_2640v4(40)
        assert forty.effective_bandwidth_gbps <= forty.mem_bandwidth_gbps
        assert forty.effective_bandwidth_gbps > 5 * xeon_e5_2640v4(1).effective_bandwidth_gbps

    def test_cpu_single_thread_bandwidth_limited(self):
        one = xeon_e5_2640v4(1)
        assert one.effective_bandwidth_gbps == one.per_thread_bandwidth_gbps

    def test_gpu_bandwidth_is_full(self):
        gpu = tesla_p100()
        assert gpu.effective_bandwidth_gbps == gpu.mem_bandwidth_gbps

    def test_with_threads(self):
        spec = xeon_e5_2640v4(1).with_threads(8)
        assert spec.threads == 8

    def test_with_threads_rejected_on_gpu(self):
        with pytest.raises(ValidationError):
            tesla_p100().with_threads(4)

    def test_with_memory(self):
        spec = tesla_p100().with_memory(1024)
        assert spec.global_mem_bytes == 1024


class TestPresets:
    def test_p100_parameters(self):
        gpu = tesla_p100()
        assert gpu.kind == "gpu"
        assert gpu.global_mem_bytes == 12 * 1024**3
        assert gpu.num_sms == 56

    def test_scaled_p100_shrinks_memory_and_latency(self):
        base = tesla_p100()
        scaled = scaled_tesla_p100(128)
        assert scaled.global_mem_bytes == base.global_mem_bytes // 128
        assert scaled.launch_overhead_s == pytest.approx(base.launch_overhead_s / 128)
        assert scaled.sync_overhead_s == pytest.approx(base.sync_overhead_s / 128)
        # Throughput constants are scale-free.
        assert scaled.peak_gflops == base.peak_gflops
        assert scaled.mem_bandwidth_gbps == base.mem_bandwidth_gbps

    def test_scaled_p100_rejects_bad_scale(self):
        with pytest.raises(ValidationError):
            scaled_tesla_p100(0)

    def test_xeon_is_cpu(self):
        assert xeon_e5_2640v4(40).kind == "cpu"


class TestV100:
    def test_v100_preset(self):
        from repro.gpusim import tesla_v100

        v100 = tesla_v100()
        p100 = tesla_p100()
        assert v100.kind == "gpu"
        # "higher memory bandwidth and more cores" (Section 4.1).
        assert v100.mem_bandwidth_gbps > p100.mem_bandwidth_gbps
        assert v100.num_sms > p100.num_sms
        assert v100.peak_gflops > p100.peak_gflops

    def test_scaled_v100(self):
        from repro.gpusim import scaled_tesla_v100, tesla_v100

        scaled = scaled_tesla_v100(128)
        base = tesla_v100()
        assert scaled.global_mem_bytes == base.global_mem_bytes // 128
        assert scaled.launch_overhead_s == pytest.approx(
            base.launch_overhead_s / 128
        )

    def test_scaled_v100_rejects_bad_scale(self):
        from repro.gpusim import scaled_tesla_v100

        with pytest.raises(ValidationError):
            scaled_tesla_v100(0)
