"""Unit tests for the engine cost model and numeric ops."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.gpusim import (
    CPUEngine,
    GPUEngine,
    make_engine,
    scaled_tesla_p100,
    tesla_p100,
    xeon_e5_2640v4,
)
from repro.sparse import CSRMatrix


class TestCostModel:
    def test_launch_overhead_is_latency(self, gpu_engine):
        charge = gpu_engine.op_charge(launches=3)
        assert charge.latency_s == pytest.approx(
            3 * gpu_engine.device.launch_overhead_s
        )
        assert charge.compute_s == 0.0

    def test_sync_overhead_is_latency(self, gpu_engine):
        charge = gpu_engine.op_charge(launches=0, syncs=10)
        assert charge.latency_s == pytest.approx(
            10 * gpu_engine.device.sync_overhead_s
        )

    def test_flops_term(self):
        engine = make_engine(tesla_p100(), flop_efficiency=1.0)
        charge = engine.op_charge(flops=9_300 * 10**9, launches=0)
        assert charge.compute_s == pytest.approx(1.0)

    def test_flop_efficiency_slows_compute(self):
        fast = make_engine(tesla_p100(), flop_efficiency=1.0)
        slow = make_engine(tesla_p100(), flop_efficiency=0.25)
        flops = 10**12
        assert slow.op_charge(flops=flops, launches=0).compute_s == pytest.approx(
            4 * fast.op_charge(flops=flops, launches=0).compute_s
        )

    def test_bandwidth_term(self):
        engine = make_engine(tesla_p100())
        gbps = engine.device.mem_bandwidth_gbps
        charge = engine.op_charge(bytes_read=int(gbps * 1e9), launches=0)
        assert charge.compute_s == pytest.approx(1.0)

    def test_bandwidth_efficiency_slows_bytes(self):
        full = make_engine(tesla_p100())
        half = make_engine(tesla_p100(), bandwidth_efficiency=0.5)
        charge_full = full.op_charge(bytes_read=10**9, launches=0)
        charge_half = half.op_charge(bytes_read=10**9, launches=0)
        assert charge_half.compute_s == pytest.approx(2 * charge_full.compute_s)

    def test_pcie_term(self, gpu_engine):
        gbps = gpu_engine.device.pcie_bandwidth_gbps
        charge = gpu_engine.op_charge(pcie_bytes=int(gbps * 1e9), launches=0)
        assert charge.compute_s == pytest.approx(1.0)

    def test_pcie_on_cpu_rejected(self, cpu_engine):
        with pytest.raises(ValidationError):
            cpu_engine.op_charge(pcie_bytes=100)

    def test_charge_updates_clock_and_counters(self, gpu_engine):
        gpu_engine.charge("cat", flops=100, bytes_read=8, launches=2)
        assert gpu_engine.counters.flops == 100
        assert gpu_engine.counters.kernel_launches == 2
        assert gpu_engine.clock.category_seconds("cat") > 0

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValidationError):
            make_engine(tesla_p100(), flop_efficiency=0.0)
        with pytest.raises(ValidationError):
            make_engine(tesla_p100(), bandwidth_efficiency=1.5)


class TestEngineFactory:
    def test_kind_dispatch(self):
        assert isinstance(make_engine(tesla_p100()), GPUEngine)
        assert isinstance(make_engine(xeon_e5_2640v4(1)), CPUEngine)

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            GPUEngine(xeon_e5_2640v4(1))
        with pytest.raises(ValidationError):
            CPUEngine(tesla_p100())

    def test_default_gpu_efficiency_below_peak(self):
        assert make_engine(tesla_p100()).flop_efficiency < 1.0

    def test_allocator_sized_from_device(self):
        engine = make_engine(scaled_tesla_p100(256))
        assert engine.allocator.capacity_bytes == scaled_tesla_p100(256).global_mem_bytes


class TestNumericOps:
    def test_matmul_transpose_executes_and_charges(self, gpu_engine, rng):
        a = rng.normal(size=(3, 5))
        b = rng.normal(size=(4, 5))
        out = gpu_engine.matmul_transpose(a, b, category="k")
        assert np.allclose(out, a @ b.T)
        assert gpu_engine.counters.flops == 2 * 3 * 4 * 5

    def test_matmul_transpose_sparse_flops(self, gpu_engine, rng):
        dense = rng.normal(size=(4, 6)) * (rng.random((4, 6)) < 0.5)
        a = CSRMatrix.from_dense(dense)
        b = rng.normal(size=(3, 6))
        gpu_engine.matmul_transpose(a, b, category="k")
        assert gpu_engine.counters.flops == 2 * a.nnz * 3

    def test_reduce_extremum_masked(self, gpu_engine):
        values = np.array([5.0, 1.0, 3.0])
        mask = np.array([True, False, True])
        index, value = gpu_engine.reduce_extremum(
            values, mask, mode="min", category="s"
        )
        assert (index, value) == (2, 3.0)

    def test_reduce_extremum_unmasked_max(self, gpu_engine):
        index, value = gpu_engine.reduce_extremum(
            np.array([5.0, 9.0, 3.0]), None, mode="max", category="s"
        )
        assert (index, value) == (1, 9.0)

    def test_reduce_extremum_empty_mask(self, gpu_engine):
        index, value = gpu_engine.reduce_extremum(
            np.array([1.0, 2.0]), np.array([False, False]), mode="min", category="s"
        )
        assert index == -1 and np.isnan(value)

    def test_reduce_extremum_bad_mode(self, gpu_engine):
        with pytest.raises(ValidationError):
            gpu_engine.reduce_extremum(np.ones(2), None, mode="median", category="s")

    def test_reduce_sum(self, gpu_engine):
        assert gpu_engine.reduce_sum(np.array([1.0, 2.0, 3.0]), category="s") == 6.0
        assert gpu_engine.reduce_sum(np.array([]), category="s") == 0.0

    def test_sort_values(self, gpu_engine):
        values = np.array([3.0, 1.0, 2.0])
        order = gpu_engine.sort_values(values, category="s")
        assert values[order].tolist() == [1.0, 2.0, 3.0]

    def test_elementwise_rejects_negative(self, gpu_engine):
        with pytest.raises(ValidationError):
            gpu_engine.elementwise("s", -1)

    def test_transfer_noop_on_cpu(self, cpu_engine):
        cpu_engine.transfer(10**6)
        assert cpu_engine.clock.elapsed_s == 0.0

    def test_transfer_charges_pcie_on_gpu(self, gpu_engine):
        gpu_engine.transfer(10**6)
        assert gpu_engine.counters.pcie_bytes == 10**6
        assert gpu_engine.clock.category_seconds("transfer") > 0

    def test_transfer_rejects_negative(self, gpu_engine):
        with pytest.raises(ValidationError):
            gpu_engine.transfer(-5)


class TestBatchingEconomics:
    """The cost-model fact the whole paper rests on."""

    def test_batched_rows_cheaper_per_row(self):
        """Computing q rows in one launch beats q single-row launches.

        Mirrors Section 3.3.1: "when q > 10, the computation cost per row
        is often over ten times cheaper than the cost of computing a row
        individually".
        """
        engine = make_engine(tesla_p100())  # unscaled: paper-size ops
        n, d, q = 30_000, 700, 512
        single = engine.op_charge(
            flops=2 * n * d, bytes_read=n * d * 8, bytes_written=n * 8, launches=1
        )
        batch = engine.op_charge(
            flops=2 * q * n * d,
            bytes_read=n * d * 8 + q * d * 8,
            bytes_written=q * n * 8,
            launches=1,
        )
        per_row_single = single.total_s
        per_row_batched = batch.total_s / q
        assert per_row_single > 10 * per_row_batched
