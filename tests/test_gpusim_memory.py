"""Unit tests for the device memory allocator."""

import pytest

from repro.exceptions import DeviceMemoryError, DeviceStateError, ValidationError
from repro.gpusim import DeviceAllocator


class TestAllocation:
    def test_basic_accounting(self):
        alloc = DeviceAllocator(1000)
        buf = alloc.allocate(400, tag="a")
        assert alloc.used_bytes == 400
        assert alloc.free_bytes == 600
        buf.free()
        assert alloc.used_bytes == 0

    def test_oom_raises_with_details(self):
        alloc = DeviceAllocator(100)
        alloc.allocate(80)
        with pytest.raises(DeviceMemoryError) as exc:
            alloc.allocate(50)
        assert exc.value.requested_bytes == 50
        assert exc.value.free_bytes == 20

    def test_exact_fit_succeeds(self):
        alloc = DeviceAllocator(100)
        alloc.allocate(100)
        assert alloc.free_bytes == 0

    def test_zero_byte_allocation(self):
        alloc = DeviceAllocator(10)
        buf = alloc.allocate(0)
        assert buf.nbytes == 0
        buf.free()

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValidationError):
            DeviceAllocator(10).allocate(-1)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValidationError):
            DeviceAllocator(0)

    def test_fits_probe(self):
        alloc = DeviceAllocator(100)
        alloc.allocate(60)
        assert alloc.fits(40)
        assert not alloc.fits(41)
        assert not alloc.fits(-1)


class TestLifecycle:
    def test_double_free_rejected(self):
        alloc = DeviceAllocator(100)
        buf = alloc.allocate(10)
        buf.free()
        with pytest.raises(DeviceStateError, match="double free"):
            buf.free()

    def test_foreign_buffer_rejected(self):
        a = DeviceAllocator(100)
        b = DeviceAllocator(100)
        buf = a.allocate(10)
        with pytest.raises(DeviceStateError):
            b.free(buf)

    def test_context_manager_frees(self):
        alloc = DeviceAllocator(100)
        with alloc.allocate(50) as buf:
            assert alloc.used_bytes == 50
            assert not buf.freed
        assert buf.freed
        assert alloc.used_bytes == 0

    def test_context_manager_tolerates_inner_free(self):
        alloc = DeviceAllocator(100)
        with alloc.allocate(50) as buf:
            buf.free()
        assert alloc.used_bytes == 0


class TestIntrospection:
    def test_peak_tracks_high_water_mark(self):
        alloc = DeviceAllocator(100)
        a = alloc.allocate(60)
        a.free()
        alloc.allocate(30)
        assert alloc.peak_bytes == 60

    def test_usage_by_tag(self):
        alloc = DeviceAllocator(100)
        alloc.allocate(10, tag="kernel-buffer")
        alloc.allocate(20, tag="kernel-buffer")
        alloc.allocate(5, tag="state")
        assert alloc.usage_by_tag() == {"kernel-buffer": 30, "state": 5}

    def test_live_buffers(self):
        alloc = DeviceAllocator(100)
        buf = alloc.allocate(10)
        assert alloc.live_buffers == 1
        buf.free()
        assert alloc.live_buffers == 0
