"""Unit tests for the concurrency scheduler."""

import pytest

from repro.exceptions import ValidationError
from repro.gpusim import (
    ConcurrentScheduler,
    ScheduledTask,
    SimClock,
    TaskCost,
    TimeCharge,
    scaled_tesla_p100,
)


def task(name, latency=0.0, compute=0.0, mem=0, blocks=1):
    return ScheduledTask(name, TaskCost(latency, compute, mem, blocks))


class TestTaskCost:
    def test_serial_time(self):
        assert TaskCost(1.0, 2.0).serial_s == 3.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            TaskCost(-1.0, 0.0)
        with pytest.raises(ValidationError):
            TaskCost(0.0, 0.0, mem_bytes=-1)
        with pytest.raises(ValidationError):
            TaskCost(0.0, 0.0, blocks=0)

    def test_from_clock(self):
        clock = SimClock()
        clock.charge("a", TimeCharge(1.0, 2.0))
        scheduled = ScheduledTask.from_clock("t", clock, mem_bytes=10, blocks=2)
        assert scheduled.cost.latency_s == 1.0
        assert scheduled.cost.compute_s == 2.0
        assert scheduled.cost.mem_bytes == 10


class TestWaveMakespan:
    def test_single_task_is_serial(self):
        scheduler = ConcurrentScheduler(scaled_tesla_p100())
        plan = scheduler.plan([task("a", latency=1.0, compute=0.5)])
        assert plan.makespan_s == pytest.approx(1.5)
        assert plan.speedup == pytest.approx(1.0)

    def test_latency_bound_tasks_overlap(self):
        scheduler = ConcurrentScheduler(scaled_tesla_p100())
        tasks = [task(f"t{i}", latency=1.0, compute=0.01) for i in range(8)]
        plan = scheduler.plan(tasks)
        # Eight latency chains overlap: makespan ~ one chain, not eight.
        assert plan.makespan_s < 1.5
        assert plan.speedup > 5.0

    def test_compute_bound_tasks_do_not_overlap(self):
        scheduler = ConcurrentScheduler(scaled_tesla_p100())
        tasks = [task(f"t{i}", latency=0.0, compute=1.0) for i in range(4)]
        plan = scheduler.plan(tasks)
        # Throughput is shared: total compute cannot shrink.
        assert plan.makespan_s == pytest.approx(4.0)

    def test_mixed_wave(self):
        scheduler = ConcurrentScheduler(scaled_tesla_p100())
        tasks = [task("big", latency=2.0, compute=1.0), task("small", 0.1, 0.1)]
        plan = scheduler.plan(tasks)
        assert plan.makespan_s == pytest.approx(3.0)  # longest chain dominates

    def test_zero_latency_tasks_serialise_on_compute(self):
        # Pure-compute tasks have nothing to overlap: the wave makespan is
        # exactly the compute sum and the speedup stays at 1.
        scheduler = ConcurrentScheduler(scaled_tesla_p100())
        tasks = [task(f"t{i}", latency=0.0, compute=0.25) for i in range(6)]
        plan = scheduler.plan(tasks)
        assert plan.makespan_s == pytest.approx(1.5)
        assert plan.speedup == pytest.approx(1.0)

    def test_single_task_waves_degrade_to_serial_makespan(self):
        # With max_concurrent=1 every wave holds one task, so the plan's
        # makespan must equal the serial sum exactly.
        scheduler = ConcurrentScheduler(scaled_tesla_p100(), max_concurrent=1)
        tasks = [task(f"t{i}", latency=0.3, compute=0.7) for i in range(5)]
        plan = scheduler.plan(tasks)
        assert plan.max_concurrency == 1
        assert plan.makespan_s == pytest.approx(plan.serial_s)
        assert plan.speedup == pytest.approx(1.0)


class TestPackingConstraints:
    def test_memory_cap_forces_waves(self):
        scheduler = ConcurrentScheduler(
            scaled_tesla_p100(), mem_budget_bytes=100
        )
        tasks = [task(f"t{i}", latency=1.0, mem=60) for i in range(4)]
        plan = scheduler.plan(tasks)
        assert plan.max_concurrency == 1
        assert len(plan.waves) == 4

    def test_sm_cap_forces_waves(self):
        device = scaled_tesla_p100()  # 56 SMs
        scheduler = ConcurrentScheduler(device)
        tasks = [task(f"t{i}", latency=1.0, blocks=28) for i in range(4)]
        plan = scheduler.plan(tasks)
        assert plan.max_concurrency == 2

    def test_max_concurrent_cap(self):
        scheduler = ConcurrentScheduler(scaled_tesla_p100(), max_concurrent=3)
        tasks = [task(f"t{i}", latency=1.0) for i in range(7)]
        plan = scheduler.plan(tasks)
        assert plan.max_concurrency == 3

    def test_oversized_memory_task_is_rejected_by_name(self):
        scheduler = ConcurrentScheduler(scaled_tesla_p100(), mem_budget_bytes=10)
        with pytest.raises(ValidationError, match="huge"):
            scheduler.plan([task("huge", latency=1.0, mem=1000)])

    def test_oversized_block_task_is_rejected_by_name(self):
        device = scaled_tesla_p100()  # 56 SMs
        scheduler = ConcurrentScheduler(device)
        with pytest.raises(ValidationError, match="wide"):
            scheduler.plan([task("wide", latency=1.0, blocks=device.num_sms + 1)])

    def test_task_exactly_at_capacity_is_admitted(self):
        device = scaled_tesla_p100()
        scheduler = ConcurrentScheduler(device, mem_budget_bytes=1000)
        plan = scheduler.plan(
            [task("full", latency=1.0, mem=1000, blocks=device.num_sms)]
        )
        assert len(plan.waves) == 1
        assert plan.makespan_s == pytest.approx(1.0)

    def test_bad_parameters(self):
        with pytest.raises(ValidationError):
            ConcurrentScheduler(scaled_tesla_p100(), max_concurrent=0)
        with pytest.raises(ValidationError):
            ConcurrentScheduler(scaled_tesla_p100(), mem_budget_bytes=0)


class TestAggregateClock:
    def test_fractions_preserved_and_total_matches_makespan(self):
        scheduler = ConcurrentScheduler(scaled_tesla_p100())
        clocks = []
        for i in range(3):
            clock = SimClock()
            clock.charge("kernel_values", TimeCharge(0.5, 0.25))
            clock.charge("subproblem", TimeCharge(0.25, 0.0))
            clocks.append(clock)
        tasks = [
            ScheduledTask.from_clock(f"t{i}", clock) for i, clock in enumerate(clocks)
        ]
        plan = scheduler.plan(tasks)
        aggregate = plan.aggregate_clock()
        assert aggregate.elapsed_s == pytest.approx(plan.makespan_s)
        fractions = aggregate.fraction_breakdown()
        assert fractions["kernel_values"] == pytest.approx(0.75)
        assert fractions["subproblem"] == pytest.approx(0.25)

    def test_empty_plan(self):
        plan = ConcurrentScheduler(scaled_tesla_p100()).plan([])
        assert plan.makespan_s == 0.0
        assert plan.aggregate_clock().elapsed_s == 0.0


class TestWaveLimits:
    """The packing rules shared by the post-hoc and interleaved drivers."""

    def _limits(self, **kwargs):
        from repro.gpusim.scheduler import WaveLimits

        kwargs.setdefault("num_sms", 8)
        kwargs.setdefault("mem_budget_bytes", 1000)
        return WaveLimits(**kwargs)

    def test_empty_wave_admits_any_validated_task(self):
        limits = self._limits()
        assert limits.admits(
            count=0, blocks=0, mem_bytes=0, task_blocks=99, task_mem_bytes=10**9
        )

    def test_validate_task_names_the_offender(self):
        limits = self._limits(num_sms=8, mem_budget_bytes=1000)
        with pytest.raises(ValidationError, match="svm_3_7"):
            limits.validate_task("svm_3_7", blocks=9, mem_bytes=0)
        with pytest.raises(ValidationError, match="svm_0_1"):
            limits.validate_task("svm_0_1", blocks=1, mem_bytes=1001)

    def test_validate_task_accepts_exact_capacity(self):
        limits = self._limits(num_sms=8, mem_budget_bytes=1000)
        limits.validate_task("fits", blocks=8, mem_bytes=1000)

    def test_sm_capacity_bounds_admission(self):
        limits = self._limits(num_sms=8)
        assert limits.admits(
            count=1, blocks=4, mem_bytes=0, task_blocks=4, task_mem_bytes=0
        )
        assert not limits.admits(
            count=1, blocks=4, mem_bytes=0, task_blocks=5, task_mem_bytes=0
        )

    def test_memory_budget_bounds_admission(self):
        limits = self._limits(mem_budget_bytes=100)
        assert limits.admits(
            count=1, blocks=1, mem_bytes=60, task_blocks=1, task_mem_bytes=40
        )
        assert not limits.admits(
            count=1, blocks=1, mem_bytes=60, task_blocks=1, task_mem_bytes=41
        )

    def test_concurrency_cap_bounds_admission(self):
        limits = self._limits(max_concurrent=2)
        assert limits.admits(
            count=1, blocks=1, mem_bytes=0, task_blocks=1, task_mem_bytes=0
        )
        assert not limits.admits(
            count=2, blocks=2, mem_bytes=0, task_blocks=1, task_mem_bytes=0
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            self._limits(num_sms=0)
        with pytest.raises(ValidationError):
            self._limits(mem_budget_bytes=0)
        with pytest.raises(ValidationError):
            self._limits(max_concurrent=0)

    def test_scheduler_exposes_its_limits(self):
        scheduler = ConcurrentScheduler(
            scaled_tesla_p100(), max_concurrent=3, mem_budget_bytes=500
        )
        assert scheduler.limits.max_concurrent == 3
        assert scheduler.limits.mem_budget_bytes == 500
        assert scheduler.limits.num_sms == scaled_tesla_p100().num_sms
