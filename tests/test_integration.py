"""Integration tests: whole-system behaviour across modules.

These mirror the paper's evaluation claims at test scale: classifier
equivalence between GMP-SVM and LibSVM (Table 4), probability validity,
registry workloads end to end, and persistence through the full stack.
"""

import io

import numpy as np
import pytest

from repro import GMPSVC, load_model
from repro.baselines import GPUBaselineClassifier, LibSVMClassifier
from repro.core.predictor import PredictorConfig, predict_labels_model
from repro.data import load_dataset
from repro.gpusim import scaled_tesla_p100


@pytest.fixture(scope="module")
def small_registry_run():
    """Train GMP and LibSVM on a downsampled registry dataset."""
    ds = load_dataset("connect-4")
    idx = np.arange(0, ds.n_train, 4)  # subsample to keep tests quick
    from repro.sparse import ops as mops

    x = mops.take_rows(ds.x_train, idx)
    y = ds.y_train[idx]
    gmp = GMPSVC(
        C=ds.spec.penalty, gamma=ds.spec.gamma, working_set_size=64
    ).fit(x, y)
    libsvm = LibSVMClassifier(C=ds.spec.penalty, gamma=ds.spec.gamma).fit(x, y)
    return ds, x, y, gmp, libsvm


class TestTable4Equivalence:
    def test_biases_match_to_three_decimals(self, small_registry_run):
        _, _, _, gmp, libsvm = small_registry_run
        for ours, theirs in zip(gmp.model_.records, libsvm.model_.records):
            assert round(ours.bias, 3) == pytest.approx(round(theirs.bias, 3), abs=2e-3)

    def test_training_errors_identical(self, small_registry_run):
        _, x, y, gmp, libsvm = small_registry_run
        ours, _ = predict_labels_model(
            gmp._predictor_config(), gmp.model_, x, use_probability=False
        )
        theirs, _ = predict_labels_model(
            libsvm._predictor_config(), libsvm.model_, x, use_probability=False
        )
        assert np.mean(ours != y) == np.mean(theirs != y)

    def test_prediction_errors_identical(self, small_registry_run):
        ds, _, _, gmp, libsvm = small_registry_run
        ours, _ = predict_labels_model(
            gmp._predictor_config(), gmp.model_, ds.x_test, use_probability=False
        )
        theirs, _ = predict_labels_model(
            libsvm._predictor_config(), libsvm.model_, ds.x_test, use_probability=False
        )
        assert np.mean(ours != ds.y_test) == np.mean(theirs != ds.y_test)

    def test_probabilities_close_between_systems(self, small_registry_run):
        ds, x, _, gmp, libsvm = small_registry_run
        p_gmp = gmp.predict_proba(x[:50] if hasattr(x, "__getitem__") else x)
        p_lib = libsvm.predict_proba(x[:50] if hasattr(x, "__getitem__") else x)
        assert np.max(np.abs(p_gmp - p_lib)) < 0.05


class TestEndToEndWorkloads:
    @pytest.mark.parametrize("name", ["adult", "rcv1"])
    def test_binary_registry_datasets(self, name):
        ds = load_dataset(name)
        clf = GMPSVC(
            C=ds.spec.penalty, gamma=ds.spec.gamma, working_set_size=128
        ).fit(ds.x_train, ds.y_train)
        train_accuracy = clf.score(ds.x_train, ds.y_train)
        test_accuracy = clf.score(ds.x_test, ds.y_test)
        assert train_accuracy > 0.9
        assert test_accuracy > 0.6

    def test_multiclass_probabilities_valid(self):
        ds = load_dataset("connect-4")
        from repro.sparse import ops as mops

        idx = np.arange(0, ds.n_train, 6)
        x, y = mops.take_rows(ds.x_train, idx), ds.y_train[idx]
        clf = GMPSVC(C=ds.spec.penalty, gamma=ds.spec.gamma, working_set_size=64)
        clf.fit(x, y)
        proba = clf.predict_proba(ds.x_test)
        assert proba.shape == (ds.n_test, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_full_stack_persistence(self, small_registry_run, tmp_path):
        ds, _, _, gmp, _ = small_registry_run
        path = tmp_path / "model.repro"
        gmp.save(path)
        reloaded = load_model(path)
        from repro.core.predictor import predict_proba_model

        config = PredictorConfig(device=scaled_tesla_p100())
        original = gmp.predict_proba(ds.x_test)
        restored, _ = predict_proba_model(config, reloaded, ds.x_test)
        assert np.allclose(original, restored, atol=1e-12)


class TestSimulatedPerformanceClaims:
    """The abstract's headline numbers, at test scale."""

    def test_gmp_vs_baseline_training(self, small_registry_run):
        ds, x, y, gmp, _ = small_registry_run
        baseline = GPUBaselineClassifier(
            C=ds.spec.penalty, gamma=ds.spec.gamma
        ).fit(x, y)
        speedup = (
            baseline.training_report_.simulated_seconds
            / gmp.training_report_.simulated_seconds
        )
        assert speedup > 1.5  # paper: two to five times

    def test_gmp_vs_libsvm_training(self, small_registry_run):
        _, _, _, gmp, libsvm = small_registry_run
        speedup = (
            libsvm.training_report_.simulated_seconds
            / gmp.training_report_.simulated_seconds
        )
        assert speedup > 20  # paper: one to two orders of magnitude

    def test_kernel_values_are_a_top_component_of_training(self, small_registry_run):
        """Figure 11's shape, softened for the reduced dataset scale.

        At full scale kernel values dominate outright; at ~30x-scaled
        problems the fixed per-round work (selection, indicator updates)
        does not shrink with the kernel batches, so we assert the weaker
        invariant that kernel values are among the top two components and
        carry a substantial share (EXPERIMENTS.md discusses the gap).
        """
        from repro.perf import TRAIN_GROUPS

        _, _, _, gmp, _ = small_registry_run
        fractions = gmp.training_report_.fraction_breakdown(TRAIN_GROUPS)
        ranked = sorted(fractions, key=fractions.get, reverse=True)
        assert "kernel values" in ranked[:2]
        assert fractions["kernel values"] > 0.15

    def test_prediction_dominated_by_decision_values(self, small_registry_run):
        """Figure 12's shape: decision values dominate prediction."""
        from repro.perf import PREDICT_GROUPS

        ds, _, _, gmp, _ = small_registry_run
        gmp.predict_proba(ds.x_test)
        fractions = gmp.prediction_report_.fraction_breakdown(PREDICT_GROUPS)
        assert fractions["decision values"] == max(fractions.values())
