"""Parity and telemetry tests for the interleaved concurrent trainer.

The wave driver (:mod:`repro.core.interleave`) must be an *execution*
optimization only: fusing kernel launches across concurrently-running
binary SVMs and reading the timeline off executed waves may change the
simulated cost accounting, but never a single bit of the trained model.
These tests pin that contract across class counts, storage formats and
sharing modes, and check that the reported concurrency numbers really
come from the driver's wave trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trainer import TrainerConfig, train_multiclass
from repro.data import gaussian_blobs
from repro.exceptions import ValidationError
from repro.gpusim.device import scaled_tesla_p100
from repro.kernels.functions import kernel_from_name
from repro.sparse import CSRMatrix


def make_problem(n_classes, *, n_per_class=40, seed=11, sparse=False):
    x, y = gaussian_blobs(
        n=n_per_class * n_classes, n_features=6, n_classes=n_classes, seed=seed
    )
    if sparse:
        x = np.where(np.abs(x) < 0.4, 0.0, x)  # some genuine zeros
        x = CSRMatrix.from_dense(x)
    return x, y


def train(
    x,
    y,
    *,
    concurrent=True,
    mode="interleaved",
    share=True,
    max_concurrent=None,
    probability=True,
    cv_folds=0,
):
    config = TrainerConfig(
        device=scaled_tesla_p100(),
        solver="batched",
        concurrent=concurrent,
        concurrency_mode=mode,
        share_kernel_values=share,
        probability=probability,
        probability_cv_folds=cv_folds,
        max_concurrent_svms=max_concurrent,
    )
    kernel = kernel_from_name("gaussian", gamma=0.4)
    return train_multiclass(config, x, y, kernel, 10.0)


def assert_models_bitwise_equal(model_a, model_b):
    """Every trained artifact identical to the last bit."""
    assert len(model_a.records) == len(model_b.records)
    for rec_a, rec_b in zip(model_a.records, model_b.records):
        assert (rec_a.s, rec_a.t) == (rec_b.s, rec_b.t)
        assert rec_a.iterations == rec_b.iterations
        assert np.array_equal(rec_a.global_sv_indices, rec_b.global_sv_indices)
        assert np.array_equal(rec_a.coefficients, rec_b.coefficients)
        assert rec_a.bias == rec_b.bias
        assert rec_a.objective == rec_b.objective
        assert rec_a.training_error == rec_b.training_error
        if rec_a.sigmoid is None:
            assert rec_b.sigmoid is None
        else:
            assert rec_a.sigmoid.a == rec_b.sigmoid.a
            assert rec_a.sigmoid.b == rec_b.sigmoid.b
    pool_a, pool_b = model_a.sv_pool, model_b.sv_pool
    assert np.array_equal(pool_a.pool_global_indices, pool_b.pool_global_indices)


class TestBitwiseParity:
    """Interleaved training is bitwise identical to the sequential path."""

    @pytest.mark.parametrize("n_classes", [2, 3, 5, 10])
    def test_dense_parity_across_class_counts(self, n_classes):
        x, y = make_problem(n_classes, n_per_class=24)
        model_i, _ = train(x, y, mode="interleaved")
        model_s, _ = train(x, y, concurrent=False)
        assert_models_bitwise_equal(model_i, model_s)

    @pytest.mark.parametrize("n_classes", [3, 5])
    def test_sparse_parity(self, n_classes):
        x, y = make_problem(n_classes, sparse=True)
        model_i, _ = train(x, y, mode="interleaved")
        model_s, _ = train(x, y, concurrent=False)
        assert_models_bitwise_equal(model_i, model_s)

    @pytest.mark.parametrize("share", [True, False])
    def test_parity_with_and_without_sharing(self, share):
        x, y = make_problem(4)
        model_i, report = train(x, y, mode="interleaved", share=share)
        model_s, _ = train(x, y, concurrent=False, share=share)
        assert_models_bitwise_equal(model_i, model_s)
        assert report.schedule_source == "wave_trace"

    def test_parity_against_posthoc_mode(self):
        x, y = make_problem(3)
        model_i, _ = train(x, y, mode="interleaved")
        model_p, _ = train(x, y, mode="posthoc")
        assert_models_bitwise_equal(model_i, model_p)

    def test_parity_under_concurrency_cap(self):
        x, y = make_problem(4)
        model_i, report = train(x, y, mode="interleaved", max_concurrent=2)
        model_s, _ = train(x, y, concurrent=False)
        assert_models_bitwise_equal(model_i, model_s)
        assert report.max_concurrency <= 2

    def test_parity_with_cv_sigmoids(self):
        x, y = make_problem(3)
        model_i, _ = train(x, y, mode="interleaved", cv_folds=3)
        model_s, _ = train(x, y, concurrent=False, cv_folds=3)
        assert_models_bitwise_equal(model_i, model_s)

    def test_sharing_stats_match_sequential(self):
        """Fused prefetching must not change the sharing economics."""
        x, y = make_problem(3)
        _, report_i = train(x, y, mode="interleaved")
        _, report_s = train(x, y, concurrent=False)
        assert report_i.sharing_hit_rate == report_s.sharing_hit_rate
        assert report_i.kernel_rows_computed == report_s.kernel_rows_computed


class TestWaveTrace:
    """Reported concurrency numbers come from the executed wave trace."""

    def test_schedule_source_labels(self):
        x, y = make_problem(3)
        _, report_i = train(x, y, mode="interleaved")
        _, report_p = train(x, y, mode="posthoc")
        _, report_s = train(x, y, concurrent=False)
        assert report_i.schedule_source == "wave_trace"
        assert report_p.schedule_source == "posthoc"
        assert report_s.schedule_source == "serial"
        assert report_p.wave_trace is None
        assert report_s.wave_trace is None

    def test_concurrency_numbers_derive_from_trace(self):
        x, y = make_problem(3)
        _, report = train(x, y, mode="interleaved")
        trace = report.wave_trace
        assert trace, "interleaved run must record its waves"
        assert report.max_concurrency == max(w["n_members"] for w in trace)
        serial = sum(w["serial_seconds"] for w in trace)
        concurrent = sum(w["concurrent_seconds"] for w in trace)
        assert report.concurrency_speedup == pytest.approx(serial / concurrent)
        assert report.concurrency_speedup > 1.0
        # Wave membership respects the packing rules at every wave.
        device = scaled_tesla_p100()
        for wave in trace:
            assert wave["n_members"] >= 1
            assert wave["blocks"] <= max(device.num_sms, wave["n_members"] * 7)

    def test_waves_shrink_as_solvers_finish(self):
        x, y = make_problem(3)
        _, report = train(x, y, mode="interleaved")
        trace = report.wave_trace
        finished = [name for wave in trace for name in wave["finished"]]
        assert sorted(finished) == sorted(
            {name for wave in trace for name in wave["members"]}
        )
        assert trace[-1]["n_members"] >= 1

    def test_interleaving_reduces_simulated_time(self):
        x, y = make_problem(3)
        _, report_i = train(x, y, mode="interleaved")
        _, report_s = train(x, y, concurrent=False)
        assert report_i.simulated_seconds < report_s.simulated_seconds

    def test_fused_prefetch_appears_in_trace(self):
        x, y = make_problem(3)
        _, report = train(x, y, mode="interleaved", share=True)
        assert sum(w["prefetch_segments"] for w in report.wave_trace) > 0

    def test_report_dict_round_trips_trace(self):
        x, y = make_problem(3)
        _, report = train(x, y, mode="interleaved")
        snapshot = report.to_dict()
        assert snapshot["schedule_source"] == "wave_trace"
        assert snapshot["max_concurrency"] == report.max_concurrency
        assert len(snapshot["wave_trace"]) == len(report.wave_trace)

    def test_single_pair_falls_back_to_serial(self):
        x, y = make_problem(2)
        _, report = train(x, y, mode="interleaved")
        assert report.schedule_source == "serial"
        assert report.max_concurrency == 1

    def test_wave_spans_mirror_the_trace(self):
        """With tracing on, every executed wave emits a telemetry span whose
        attributes carry the same numbers the report derives its
        concurrency stats from."""
        from repro.telemetry.tracer import Tracer

        x, y = make_problem(3)
        tracer = Tracer()
        config = TrainerConfig(
            device=scaled_tesla_p100(),
            solver="batched",
            concurrency_mode="interleaved",
            probability=False,
            tracer=tracer,
        )
        kernel = kernel_from_name("gaussian", gamma=0.4)
        from repro.core.trainer import train_multiclass

        _, report = train_multiclass(config, x, y, kernel, 10.0)
        spans = [r for r in tracer.to_records() if r["name"] == "interleave.wave"]
        assert len(spans) == len(report.wave_trace)
        spans.sort(key=lambda r: r["attrs"]["wave"])
        for record, wave in zip(spans, report.wave_trace):
            assert record["attrs"]["wave"] == wave["wave"]
            assert record["attrs"]["n_members"] == wave["n_members"]
            assert record["attrs"]["serial_seconds"] == wave["serial_seconds"]
            assert record["attrs"]["concurrent_seconds"] == (
                wave["concurrent_seconds"]
            )
        assert report.max_concurrency == max(
            r["attrs"]["n_members"] for r in spans
        )


class TestConfigValidation:
    """The packing knobs reject values that would corrupt wave accounting."""

    def _config(self, **overrides):
        return TrainerConfig(device=scaled_tesla_p100(), **overrides)

    @pytest.mark.parametrize("blocks", [0, -1, -7])
    def test_blocks_per_svm_must_be_positive(self, blocks):
        with pytest.raises(ValidationError, match="blocks_per_svm"):
            self._config(blocks_per_svm=blocks)

    @pytest.mark.parametrize("cap", [0, -2])
    def test_max_concurrent_svms_must_be_positive(self, cap):
        with pytest.raises(ValidationError, match="max_concurrent_svms"):
            self._config(max_concurrent_svms=cap)

    def test_share_budget_must_be_positive(self):
        with pytest.raises(ValidationError, match="share_budget_bytes"):
            self._config(share_budget_bytes=0)

    def test_unknown_concurrency_mode_rejected(self):
        with pytest.raises(ValidationError, match="concurrency_mode"):
            self._config(concurrency_mode="speculative")

    def test_valid_configs_accepted(self):
        self._config(blocks_per_svm=1, max_concurrent_svms=1)
        self._config(concurrency_mode="posthoc", share_budget_bytes=1 << 20)
