"""Unit and property tests for the kernel-value buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.gpusim import DeviceAllocator
from repro.kernels import KernelBuffer


def row(value, length=4):
    return np.full(length, float(value))


class TestBasics:
    def test_get_miss_then_hit(self):
        buf = KernelBuffer(2, 4)
        assert buf.get(1) is None
        buf.put_batch([1], row(1)[None, :])
        fetched = buf.get(1)
        assert np.allclose(fetched, 1.0)
        assert buf.stats.hits == 1 and buf.stats.misses == 1

    def test_returned_row_is_readonly(self):
        buf = KernelBuffer(2, 4)
        buf.put_batch([1], row(1)[None, :])
        fetched = buf.get(1)
        with pytest.raises(ValueError):
            fetched[0] = 99.0

    def test_contains_does_not_count(self):
        buf = KernelBuffer(2, 4)
        buf.contains(5)
        assert buf.stats.requests == 0

    def test_refresh_overwrites_in_place(self):
        buf = KernelBuffer(2, 4)
        buf.put_batch([1], row(1)[None, :])
        buf.put_batch([1], row(9)[None, :])
        assert np.allclose(buf.get(1), 9.0)
        assert buf.size == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            KernelBuffer(0, 4)
        with pytest.raises(ValidationError):
            KernelBuffer(2, 0)
        with pytest.raises(ValidationError):
            KernelBuffer(2, 4, policy="random")

    def test_put_batch_shape_check(self):
        buf = KernelBuffer(2, 4)
        with pytest.raises(ValidationError):
            buf.put_batch([1, 2], np.ones((1, 4)))

    def test_put_batch_duplicate_ids_rejected(self):
        buf = KernelBuffer(4, 4)
        with pytest.raises(ValidationError, match="duplicate"):
            buf.put_batch([1, 1], np.ones((2, 4)))

    def test_oversized_batch_keeps_tail(self):
        buf = KernelBuffer(2, 4)
        rows = np.vstack([row(i) for i in range(5)])
        buf.put_batch([0, 1, 2, 3, 4], rows)
        assert buf.size == 2
        assert buf.contains(3) and buf.contains(4)


class TestFIFO:
    def test_eviction_order_is_insertion_order(self):
        buf = KernelBuffer(3, 4, policy="fifo")
        for i in range(3):
            buf.put_batch([i], row(i)[None, :])
        buf.get(0)  # recency must NOT matter for FIFO
        buf.put_batch([3], row(3)[None, :])
        assert not buf.contains(0)
        assert buf.contains(1) and buf.contains(2) and buf.contains(3)
        assert buf.stats.evictions == 1

    def test_batch_replacement(self):
        """The paper's FIFO *batch* replacement: a new batch displaces the oldest."""
        buf = KernelBuffer(4, 4, policy="fifo")
        buf.put_batch([0, 1], np.vstack([row(0), row(1)]))
        buf.put_batch([2, 3], np.vstack([row(2), row(3)]))
        buf.put_batch([4, 5], np.vstack([row(4), row(5)]))
        assert not buf.contains(0) and not buf.contains(1)
        assert all(buf.contains(i) for i in (2, 3, 4, 5))


class TestLRU:
    def test_recency_protects_from_eviction(self):
        buf = KernelBuffer(3, 4, policy="lru")
        for i in range(3):
            buf.put_batch([i], row(i)[None, :])
        buf.get(0)  # 0 becomes most recent
        buf.put_batch([3], row(3)[None, :])
        assert buf.contains(0)
        assert not buf.contains(1)


class TestLFU:
    def test_frequency_protects_from_eviction(self):
        buf = KernelBuffer(3, 4, policy="lfu")
        for i in range(3):
            buf.put_batch([i], row(i)[None, :])
        buf.get(0)
        buf.get(0)
        buf.get(2)
        buf.put_batch([3], row(3)[None, :])
        assert not buf.contains(1)  # never used -> evicted
        assert buf.contains(0) and buf.contains(2)

    def test_frequency_tie_breaks_by_age(self):
        buf = KernelBuffer(2, 4, policy="lfu")
        buf.put_batch([0], row(0)[None, :])
        buf.put_batch([1], row(1)[None, :])
        buf.put_batch([2], row(2)[None, :])
        assert not buf.contains(0)


class TestFetch:
    def test_fetch_computes_only_missing(self):
        buf = KernelBuffer(4, 4)
        buf.put_batch([1], row(1)[None, :])
        calls = []

        def compute(ids):
            calls.append(ids.tolist())
            return np.vstack([row(i) for i in ids])

        out = buf.fetch([0, 1, 2], compute)
        assert calls == [[0, 2]]
        assert np.allclose(out, np.vstack([row(0), row(1), row(2)]))

    def test_fetch_all_hits_never_calls(self):
        buf = KernelBuffer(4, 4)
        buf.put_batch([0, 1], np.vstack([row(0), row(1)]))

        def forbidden(ids):
            raise AssertionError("should not compute")

        out = buf.fetch([1, 0], forbidden)
        assert np.allclose(out, np.vstack([row(1), row(0)]))

    def test_fetch_validates_compute_shape(self):
        buf = KernelBuffer(4, 4)
        with pytest.raises(ValidationError):
            buf.fetch([0], lambda ids: np.ones((2, 4)))

    def test_hit_rate(self):
        buf = KernelBuffer(4, 4)
        buf.fetch([0, 1], lambda ids: np.vstack([row(i) for i in ids]))
        buf.fetch([0, 1], lambda ids: np.vstack([row(i) for i in ids]))
        assert buf.stats.hit_rate == pytest.approx(0.5)


class TestDeviceRegistration:
    def test_registers_and_frees_device_memory(self):
        allocator = DeviceAllocator(10_000)
        with KernelBuffer(10, 8, allocator=allocator) as buf:
            assert allocator.used_bytes == buf.nbytes == 10 * 8 * 8
        assert allocator.used_bytes == 0

    def test_oversized_buffer_raises_oom(self):
        allocator = DeviceAllocator(100)
        from repro.exceptions import DeviceMemoryError

        with pytest.raises(DeviceMemoryError):
            KernelBuffer(10, 8, allocator=allocator)


@given(
    st.lists(st.integers(0, 20), min_size=1, max_size=60),
    st.integers(1, 8),
    st.sampled_from(["fifo", "lru", "lfu"]),
)
@settings(max_examples=60, deadline=None)
def test_buffer_invariants(ids, capacity, policy):
    """Size never exceeds capacity; resident rows hold their exact values."""
    buf = KernelBuffer(capacity, 3, policy=policy)
    for rid in ids:
        buf.fetch([rid], lambda missing: np.vstack([row(r, 3) for r in missing]))
        assert buf.size <= capacity
        assert len(buf.resident_ids()) == buf.size
    for rid in buf.resident_ids():
        stored = buf.get(rid)
        assert np.allclose(stored, float(rid))
    assert buf.stats.requests >= len(ids)


class TestBufferStats:
    def test_accounting_under_forced_eviction(self):
        def compute(ids):
            return np.vstack([row(i) for i in ids])

        buf = KernelBuffer(2, 4, policy="lru")
        buf.fetch([0, 1], compute)   # 2 misses, 2 inserts
        buf.fetch([0, 2], compute)   # 1 hit, 1 miss; 2 -> evicts 1
        buf.fetch([3, 4], compute)   # 2 misses -> evicts 0 and 2
        stats = buf.stats
        assert stats.hits == 1
        assert stats.misses == 5
        assert stats.inserts == 5
        assert stats.evictions == 3
        assert stats.requests == 6
        assert stats.hit_rate == pytest.approx(1 / 6)

    @pytest.mark.parametrize("policy", ["fifo", "lru", "lfu"])
    def test_eviction_count_matches_overflow(self, policy):
        buf = KernelBuffer(3, 4, policy=policy)
        for i in range(10):
            buf.put_batch([i], row(i)[None, :])
        assert buf.stats.inserts == 10
        assert buf.stats.evictions == 7
        assert buf.size == 3

    def test_snapshot_is_independent_copy(self):
        buf = KernelBuffer(2, 4)
        before = buf.stats.snapshot()
        buf.fetch([0], lambda ids: np.vstack([row(i) for i in ids]))
        assert before.misses == 0
        assert buf.stats.misses == 1

    def test_since_reports_per_round_deltas(self):
        def compute(ids):
            return np.vstack([row(i) for i in ids])

        buf = KernelBuffer(2, 4)
        buf.fetch([0, 1], compute)
        checkpoint = buf.stats.snapshot()
        buf.fetch([1, 2], compute)  # 1 hit, 1 miss, 1 eviction
        delta = buf.stats.since(checkpoint)
        assert delta.hits == 1
        assert delta.misses == 1
        assert delta.evictions == 1
        assert delta.inserts == 1

    def test_as_dict_is_json_safe(self):
        buf = KernelBuffer(2, 4)
        buf.fetch([0], lambda ids: np.vstack([row(i) for i in ids]))
        payload = buf.stats.as_dict()
        import json

        json.dumps(payload)
        assert payload["requests"] == 1
        assert payload["hit_rate"] == 0.0


class TestBufferTracing:
    def test_fetch_emits_fill_spans(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        buf = KernelBuffer(4, 4, tracer=tracer)
        buf.fetch([0, 1], lambda ids: np.vstack([row(i) for i in ids]))
        buf.fetch([0, 1], lambda ids: np.vstack([row(i) for i in ids]))
        fills = [r for r in tracer.to_records() if r["name"] == "kernel_buffer.fill"]
        assert len(fills) == 1  # all-hit fetches never open a span
        assert fills[0]["attrs"]["missing"] == 2
