"""Unit and property tests for the kernel functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.kernels import (
    GaussianKernel,
    LinearKernel,
    PolynomialKernel,
    SigmoidKernel,
    kernel_from_name,
)
from repro.sparse import CSRMatrix


def manual_gaussian(a, b, gamma):
    out = np.empty((a.shape[0], b.shape[0]))
    for i in range(a.shape[0]):
        for j in range(b.shape[0]):
            out[i, j] = np.exp(-gamma * np.sum((a[i] - b[j]) ** 2))
    return out


class TestValues:
    def test_linear_matches_dot(self, gpu_engine, rng):
        a, b = rng.normal(size=(4, 6)), rng.normal(size=(3, 6))
        out = LinearKernel().pairwise(gpu_engine, a, b, category="k")
        assert np.allclose(out, a @ b.T)

    def test_gaussian_matches_manual(self, gpu_engine, rng):
        a, b = rng.normal(size=(4, 6)), rng.normal(size=(3, 6))
        out = GaussianKernel(gamma=0.3).pairwise(gpu_engine, a, b, category="k")
        assert np.allclose(out, manual_gaussian(a, b, 0.3))

    def test_gaussian_with_precomputed_norms(self, gpu_engine, rng):
        a = rng.normal(size=(5, 4))
        norms = (a * a).sum(axis=1)
        kern = GaussianKernel(gamma=1.0)
        out = kern.pairwise(
            gpu_engine, a, a, category="k", norms_a=norms, norms_b=norms
        )
        assert np.allclose(out, manual_gaussian(a, a, 1.0))

    def test_polynomial_matches_manual(self, gpu_engine, rng):
        a, b = rng.normal(size=(4, 6)), rng.normal(size=(3, 6))
        kern = PolynomialKernel(degree=3, gamma=0.5, coef0=1.0)
        out = kern.pairwise(gpu_engine, a, b, category="k")
        assert np.allclose(out, (0.5 * (a @ b.T) + 1.0) ** 3)

    def test_sigmoid_matches_manual(self, gpu_engine, rng):
        a, b = rng.normal(size=(4, 6)), rng.normal(size=(3, 6))
        kern = SigmoidKernel(gamma=0.5, coef0=-0.2)
        out = kern.pairwise(gpu_engine, a, b, category="k")
        assert np.allclose(out, np.tanh(0.5 * (a @ b.T) - 0.2))

    def test_sparse_inputs_match_dense(self, gpu_engine, rng):
        dense = rng.normal(size=(6, 5)) * (rng.random((6, 5)) < 0.6)
        sparse = CSRMatrix.from_dense(dense)
        kern = GaussianKernel(gamma=0.7)
        dense_out = kern.pairwise(gpu_engine, dense, dense, category="k")
        sparse_out = kern.pairwise(gpu_engine, sparse, sparse, category="k")
        assert np.allclose(dense_out, sparse_out)


class TestDiagonal:
    def test_gaussian_diagonal_is_ones(self, gpu_engine, rng):
        norms = rng.random(5)
        diag = GaussianKernel(gamma=2.0).diagonal(gpu_engine, norms, category="k")
        assert np.allclose(diag, 1.0)

    def test_linear_diagonal_is_norms(self, gpu_engine):
        norms = np.array([1.0, 4.0])
        assert np.allclose(
            LinearKernel().diagonal(gpu_engine, norms, category="k"), norms
        )

    def test_polynomial_diagonal(self, gpu_engine):
        norms = np.array([2.0])
        kern = PolynomialKernel(degree=2, gamma=1.0, coef0=1.0)
        assert np.allclose(kern.diagonal(gpu_engine, norms, category="k"), [9.0])


class TestValidation:
    def test_gaussian_rejects_bad_gamma(self):
        with pytest.raises(ValidationError):
            GaussianKernel(gamma=0.0)

    def test_polynomial_rejects_bad_degree(self):
        with pytest.raises(ValidationError):
            PolynomialKernel(degree=0)

    def test_gaussian_requires_norms_in_transform(self, gpu_engine):
        with pytest.raises(ValidationError):
            GaussianKernel(1.0).transform(
                gpu_engine, np.ones((2, 2)), None, None, category="k"
            )


class TestFactory:
    def test_names_and_aliases(self):
        assert kernel_from_name("linear").name == "linear"
        assert kernel_from_name("rbf", gamma=1.0).name == "gaussian"
        assert kernel_from_name("poly", degree=2, gamma=1.0).name == "polynomial"
        assert kernel_from_name("SIGMOID", gamma=1.0).name == "sigmoid"

    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown kernel"):
            kernel_from_name("quantum")

    def test_bad_parameters(self):
        with pytest.raises(ValidationError, match="bad parameters"):
            kernel_from_name("linear", gamma=1.0)

    def test_equality_and_hash(self):
        assert GaussianKernel(0.5) == GaussianKernel(0.5)
        assert GaussianKernel(0.5) != GaussianKernel(0.6)
        assert hash(GaussianKernel(0.5)) == hash(GaussianKernel(0.5))
        assert LinearKernel() != GaussianKernel(0.5)


finite_rows = st.integers(2, 6)


@given(finite_rows, st.floats(0.05, 3.0))
@settings(max_examples=30, deadline=None)
def test_gaussian_kernel_matrix_is_psd_and_symmetric(n, gamma):
    """Mercer-kernel property: symmetric positive semi-definite Gram matrix."""
    from repro.gpusim import make_engine, scaled_tesla_p100

    rng = np.random.default_rng(n)
    x = rng.normal(size=(n, 3))
    engine = make_engine(scaled_tesla_p100())
    gram = GaussianKernel(gamma).pairwise(engine, x, x, category="k")
    assert np.allclose(gram, gram.T, atol=1e-12)
    eigenvalues = np.linalg.eigvalsh(gram)
    assert eigenvalues.min() > -1e-8
    assert np.allclose(np.diag(gram), 1.0)


@given(finite_rows)
@settings(max_examples=30, deadline=None)
def test_gaussian_values_in_unit_interval(n):
    from repro.gpusim import make_engine, scaled_tesla_p100

    rng = np.random.default_rng(n + 100)
    x = rng.normal(size=(n, 4))
    engine = make_engine(scaled_tesla_p100())
    gram = GaussianKernel(0.5).pairwise(engine, x, x, category="k")
    assert np.all(gram >= 0.0) and np.all(gram <= 1.0 + 1e-12)
