"""Unit tests for batched kernel-row computation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kernels import GaussianKernel, KernelRowComputer, LinearKernel
from repro.sparse import CSRMatrix


@pytest.fixture
def computer(gpu_engine, rng):
    x = rng.normal(size=(20, 6))
    return KernelRowComputer(gpu_engine, GaussianKernel(gamma=0.4), x), x


class TestRows:
    def test_rows_match_full_matrix(self, computer):
        comp, x = computer
        full = comp.kernel.pairwise(comp.engine, x, x, category="k")
        rows = comp.rows([3, 7, 11])
        assert np.allclose(rows, full[[3, 7, 11]])

    def test_rows_rejects_2d_indices(self, computer):
        comp, _ = computer
        with pytest.raises(ValidationError):
            comp.rows(np.array([[1, 2]]))

    def test_row_nbytes(self, computer):
        comp, x = computer
        assert comp.row_nbytes == x.shape[0] * 8

    def test_rows_charge_kernel_category(self, computer):
        comp, _ = computer
        before = comp.engine.clock.category_seconds("kernel_values")
        comp.rows([0, 1])
        assert comp.engine.clock.category_seconds("kernel_values") > before

    def test_rows_custom_category(self, computer):
        comp, _ = computer
        comp.rows([0], category="special")
        assert comp.engine.clock.category_seconds("special") > 0


class TestDiagonal:
    def test_gaussian_diagonal(self, computer):
        comp, _ = computer
        assert np.allclose(comp.diagonal(), 1.0)

    def test_diagonal_cached(self, computer):
        comp, _ = computer
        first = comp.diagonal()
        assert comp.diagonal() is first

    def test_linear_diagonal_without_norm_kernel(self, gpu_engine, rng):
        x = rng.normal(size=(5, 3))
        comp = KernelRowComputer(gpu_engine, LinearKernel(), x)
        assert comp.norms() is None
        assert np.allclose(comp.diagonal(), (x * x).sum(axis=1))


class TestBlock:
    def test_block_against_other_matrix(self, computer, rng):
        comp, x = computer
        test = rng.normal(size=(4, 6))
        block = comp.block(test)
        expected = comp.kernel.pairwise(comp.engine, test, x, category="k")
        assert np.allclose(block, expected)

    def test_block_with_column_subset(self, computer, rng):
        comp, x = computer
        test = rng.normal(size=(3, 6))
        cols = np.array([2, 5, 9])
        block = comp.block(test, column_indices=cols)
        full = comp.block(test)
        assert np.allclose(block, full[:, cols])

    def test_block_sparse_data(self, gpu_engine, rng):
        dense = rng.normal(size=(10, 5)) * (rng.random((10, 5)) < 0.5)
        comp = KernelRowComputer(gpu_engine, GaussianKernel(0.5), CSRMatrix.from_dense(dense))
        test = rng.normal(size=(2, 5))
        dense_comp = KernelRowComputer(gpu_engine, GaussianKernel(0.5), dense)
        assert np.allclose(comp.block(test), dense_comp.block(test))
