"""Unit tests for cross-SVM kernel-value sharing (Figure 3)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kernels import GaussianKernel, KernelRowComputer, SharedClassPairKernels
from repro.kernels.shared import naive_block_count, unique_block_count


@pytest.fixture
def shared_setup(gpu_engine, rng):
    x = rng.normal(size=(30, 5))
    labels = np.repeat([0, 1, 2], 10)
    partition = {c: np.flatnonzero(labels == c) for c in range(3)}
    computer = KernelRowComputer(gpu_engine, GaussianKernel(gamma=0.5), x)
    shared = SharedClassPairKernels(computer, partition)
    return shared, computer, x, partition


class TestBlockCounts:
    def test_paper_example_three_classes(self):
        """Figure 3: 12 naive blocks collapse to 9 shared blocks."""
        assert naive_block_count(3) == 12
        assert unique_block_count(3) == 9

    def test_counts_grow_correctly(self):
        # With a single pair there is nothing to share.
        assert unique_block_count(2) == naive_block_count(2)
        for k in range(3, 8):
            assert unique_block_count(k) < naive_block_count(k)

    def test_validation(self):
        with pytest.raises(ValidationError):
            unique_block_count(0)
        with pytest.raises(ValidationError):
            naive_block_count(-1)


class TestCorrectness:
    def test_rows_match_direct_computation(self, shared_setup):
        shared, computer, x, partition = shared_setup
        ids = np.array([1, 15])
        block = shared.rows_for_pair(ids, 0, 1)
        cols = np.concatenate([partition[0], partition[1]])
        expected = computer.kernel.pairwise(
            computer.engine, x[ids], x[cols], category="k"
        )
        assert np.allclose(block, expected)

    def test_column_order_is_s_then_t(self, shared_setup):
        shared, computer, x, partition = shared_setup
        ids = np.array([5])
        block_01 = shared.rows_for_pair(ids, 0, 1)
        block_10_s = shared.segment(5, 1)
        assert np.allclose(block_01[0, 10:], block_10_s)

    def test_unknown_class_rejected(self, shared_setup):
        shared = shared_setup[0]
        with pytest.raises(ValidationError):
            shared.rows_for_pair(np.array([0]), 0, 9)

    def test_empty_class_rejected(self, gpu_engine, rng):
        x = rng.normal(size=(4, 3))
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        with pytest.raises(ValidationError, match="no instances"):
            SharedClassPairKernels(computer, {0: np.array([0, 1]), 1: np.array([], dtype=np.int64)})


class TestSharing:
    def test_second_svm_reuses_segments(self, shared_setup):
        shared = shared_setup[0]
        ids = np.array([2, 4])
        shared.rows_for_pair(ids, 0, 1)
        misses_before = shared.stats.segment_misses
        # Pair (0, 2) re-requests the same instances against class 0.
        shared.rows_for_pair(ids, 0, 2)
        assert shared.stats.segment_hits >= 2  # the class-0 segments
        assert shared.stats.segment_misses == misses_before + 2  # class-2 only

    def test_disabled_sharing_always_recomputes(self, gpu_engine, rng):
        x = rng.normal(size=(20, 4))
        labels = np.repeat([0, 1], 10)
        partition = {c: np.flatnonzero(labels == c) for c in range(2)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        shared = SharedClassPairKernels(computer, partition, enabled=False)
        ids = np.array([1])
        shared.rows_for_pair(ids, 0, 1)
        shared.rows_for_pair(ids, 0, 1)
        assert shared.stats.segment_hits == 0
        assert shared.resident_bytes == 0

    def test_sharing_reduces_engine_flops(self, gpu_engine, rng):
        x = rng.normal(size=(20, 4))
        labels = np.repeat([0, 1], 10)
        partition = {c: np.flatnonzero(labels == c) for c in range(2)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        shared = SharedClassPairKernels(computer, partition)
        ids = np.array([0, 1, 2])
        shared.rows_for_pair(ids, 0, 1)
        flops_after_first = gpu_engine.counters.flops
        shared.rows_for_pair(ids, 0, 1)  # fully cached
        assert gpu_engine.counters.flops == flops_after_first

    def test_bytes_saved_statistic(self, shared_setup):
        shared = shared_setup[0]
        ids = np.array([3])
        shared.rows_for_pair(ids, 0, 1)
        shared.rows_for_pair(ids, 0, 1)
        assert shared.stats.bytes_saved == 2 * 10 * 8


class TestMemoryCap:
    def test_cap_evicts_oldest_segments(self, gpu_engine, rng):
        x = rng.normal(size=(20, 4))
        labels = np.repeat([0, 1], 10)
        partition = {c: np.flatnonzero(labels == c) for c in range(2)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        segment_bytes = 10 * 8
        shared = SharedClassPairKernels(
            computer, partition, max_bytes=3 * segment_bytes
        )
        for i in range(5):
            shared.segment(i, 0)
        assert shared.resident_bytes <= 3 * segment_bytes

    def test_cap_smaller_than_segment_skips_caching(self, gpu_engine, rng):
        x = rng.normal(size=(10, 4))
        labels = np.repeat([0, 1], 5)
        partition = {c: np.flatnonzero(labels == c) for c in range(2)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        shared = SharedClassPairKernels(computer, partition, max_bytes=8)
        shared.segment(0, 0)
        assert shared.resident_bytes == 0
