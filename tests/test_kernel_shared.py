"""Unit tests for cross-SVM kernel-value sharing (Figure 3)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kernels import GaussianKernel, KernelRowComputer, SharedClassPairKernels
from repro.kernels.shared import naive_block_count, unique_block_count


@pytest.fixture
def shared_setup(gpu_engine, rng):
    x = rng.normal(size=(30, 5))
    labels = np.repeat([0, 1, 2], 10)
    partition = {c: np.flatnonzero(labels == c) for c in range(3)}
    computer = KernelRowComputer(gpu_engine, GaussianKernel(gamma=0.5), x)
    shared = SharedClassPairKernels(computer, partition)
    return shared, computer, x, partition


class TestBlockCounts:
    def test_paper_example_three_classes(self):
        """Figure 3: 12 naive blocks collapse to 9 shared blocks."""
        assert naive_block_count(3) == 12
        assert unique_block_count(3) == 9

    def test_counts_grow_correctly(self):
        # With a single pair there is nothing to share.
        assert unique_block_count(2) == naive_block_count(2)
        for k in range(3, 8):
            assert unique_block_count(k) < naive_block_count(k)

    def test_validation(self):
        with pytest.raises(ValidationError):
            unique_block_count(0)
        with pytest.raises(ValidationError):
            naive_block_count(-1)


class TestCorrectness:
    def test_rows_match_direct_computation(self, shared_setup):
        shared, computer, x, partition = shared_setup
        ids = np.array([1, 15])
        block = shared.rows_for_pair(ids, 0, 1)
        cols = np.concatenate([partition[0], partition[1]])
        expected = computer.kernel.pairwise(
            computer.engine, x[ids], x[cols], category="k"
        )
        assert np.allclose(block, expected)

    def test_column_order_is_s_then_t(self, shared_setup):
        shared, computer, x, partition = shared_setup
        ids = np.array([5])
        block_01 = shared.rows_for_pair(ids, 0, 1)
        block_10_s = shared.segment(5, 1)
        assert np.allclose(block_01[0, 10:], block_10_s)

    def test_unknown_class_rejected(self, shared_setup):
        shared = shared_setup[0]
        with pytest.raises(ValidationError):
            shared.rows_for_pair(np.array([0]), 0, 9)

    def test_empty_class_rejected(self, gpu_engine, rng):
        x = rng.normal(size=(4, 3))
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        with pytest.raises(ValidationError, match="no instances"):
            SharedClassPairKernels(computer, {0: np.array([0, 1]), 1: np.array([], dtype=np.int64)})


class TestSharing:
    def test_second_svm_reuses_segments(self, shared_setup):
        shared = shared_setup[0]
        ids = np.array([2, 4])
        shared.rows_for_pair(ids, 0, 1)
        misses_before = shared.stats.segment_misses
        # Pair (0, 2) re-requests the same instances against class 0.
        shared.rows_for_pair(ids, 0, 2)
        assert shared.stats.segment_hits >= 2  # the class-0 segments
        assert shared.stats.segment_misses == misses_before + 2  # class-2 only

    def test_disabled_sharing_always_recomputes(self, gpu_engine, rng):
        x = rng.normal(size=(20, 4))
        labels = np.repeat([0, 1], 10)
        partition = {c: np.flatnonzero(labels == c) for c in range(2)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        shared = SharedClassPairKernels(computer, partition, enabled=False)
        ids = np.array([1])
        shared.rows_for_pair(ids, 0, 1)
        shared.rows_for_pair(ids, 0, 1)
        assert shared.stats.segment_hits == 0
        assert shared.resident_bytes == 0

    def test_sharing_reduces_engine_flops(self, gpu_engine, rng):
        x = rng.normal(size=(20, 4))
        labels = np.repeat([0, 1], 10)
        partition = {c: np.flatnonzero(labels == c) for c in range(2)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        shared = SharedClassPairKernels(computer, partition)
        ids = np.array([0, 1, 2])
        shared.rows_for_pair(ids, 0, 1)
        flops_after_first = gpu_engine.counters.flops
        shared.rows_for_pair(ids, 0, 1)  # fully cached
        assert gpu_engine.counters.flops == flops_after_first

    def test_bytes_saved_statistic(self, shared_setup):
        shared = shared_setup[0]
        ids = np.array([3])
        shared.rows_for_pair(ids, 0, 1)
        shared.rows_for_pair(ids, 0, 1)
        assert shared.stats.bytes_saved == 2 * 10 * 8


class TestMemoryCap:
    def test_cap_evicts_oldest_segments(self, gpu_engine, rng):
        x = rng.normal(size=(20, 4))
        labels = np.repeat([0, 1], 10)
        partition = {c: np.flatnonzero(labels == c) for c in range(2)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        segment_bytes = 10 * 8
        shared = SharedClassPairKernels(
            computer, partition, max_bytes=3 * segment_bytes
        )
        for i in range(5):
            shared.segment(i, 0)
        assert shared.resident_bytes <= 3 * segment_bytes

    def test_cap_smaller_than_segment_skips_caching(self, gpu_engine, rng):
        x = rng.normal(size=(10, 4))
        labels = np.repeat([0, 1], 5)
        partition = {c: np.flatnonzero(labels == c) for c in range(2)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        shared = SharedClassPairKernels(computer, partition, max_bytes=8)
        shared.segment(0, 0)
        assert shared.resident_bytes == 0


class TestInterleavedAccess:
    """The wave driver's fused prefetch path (interleaved trainer)."""

    @pytest.fixture
    def wave_setup(self, gpu_engine, rng):
        x = rng.normal(size=(30, 5))
        labels = np.repeat([0, 1, 2], 10)
        partition = {c: np.flatnonzero(labels == c) for c in range(3)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(gamma=0.5), x)
        shared = SharedClassPairKernels(computer, partition)
        return shared, computer, x, partition

    def test_fused_launch_computes_union_once(self, wave_setup):
        shared, computer, _, _ = wave_setup
        computer.norms()  # materialize the lazy row norms up front
        launches_before = computer.engine.counters.kernel_launches
        # Two concurrently-running SVMs, (0,1) and (0,2), demanding
        # overlapping class-0 segments for rows {2, 4}.
        ids = np.array([2, 4])
        computed = shared.prefetch([(ids, 0, 1), (ids, 0, 2)])
        # Segments: rows x classes {0, 1, 2} = 6 unique; the class-0
        # demand of the second SVM is deduplicated against the first's.
        assert computed == 6
        assert shared.stats.prefetch_launches == 1
        assert shared.stats.prefetch_segments == 6
        assert shared.stats.prefetch_dedup_hits == 2
        # One fused kernel launch on the master engine, not one per class
        # segment per solver.
        assert computer.engine.counters.kernel_launches == launches_before + 1

    def test_prefetched_values_bitwise_match_private_computation(
        self, wave_setup, gpu_engine, rng
    ):
        shared, computer, x, partition = wave_setup
        ids = np.array([1, 7, 15])
        shared.prefetch([(ids, 0, 1)])
        block = shared.rows_for_pair(ids, 0, 1)
        # An SVM with sharing disabled computes the same rows privately;
        # batch composition must not leak into the numerics.
        private = SharedClassPairKernels(computer, partition, enabled=False)
        expected = private.rows_for_pair(ids, 0, 1)
        assert np.array_equal(block, expected)

    def test_first_touch_accounts_as_miss_then_hits(self, wave_setup):
        """Stats parity with the sequential schedule: the demand that
        caused a segment to be computed is a miss, later touches are hits."""
        shared, _, _, _ = wave_setup
        ids = np.array([3])
        shared.prefetch([(ids, 0, 1), (ids, 0, 2)])
        assert shared.stats.segment_hits == 0
        assert shared.stats.segment_misses == 0  # nothing consumed yet
        shared.rows_for_pair(ids, 0, 1)  # the computing owner's fetch
        assert shared.stats.segment_misses == 2
        assert shared.stats.segment_hits == 0
        shared.rows_for_pair(ids, 0, 2)  # the wave partner reuses class 0
        assert shared.stats.segment_misses == 3
        assert shared.stats.segment_hits == 1

    def test_consuming_fetch_does_no_recomputation(self, wave_setup):
        shared, computer, _, _ = wave_setup
        ids = np.array([5, 9])
        shared.prefetch([(ids, 1, 2)])
        flops_before = computer.engine.counters.flops
        shared.rows_for_pair(ids, 1, 2)
        assert computer.engine.counters.flops == flops_before

    def test_repeat_prefetch_of_resident_segments_is_free(self, wave_setup):
        shared, computer, _, _ = wave_setup
        ids = np.array([2, 4])
        shared.prefetch([(ids, 0, 1)])
        launches = computer.engine.counters.kernel_launches
        assert shared.prefetch([(ids, 0, 1)]) == 0
        assert computer.engine.counters.kernel_launches == launches
        assert shared.stats.prefetch_launches == 1

    def test_disabled_sharing_makes_prefetch_a_noop(self, gpu_engine, rng):
        x = rng.normal(size=(20, 4))
        labels = np.repeat([0, 1], 10)
        partition = {c: np.flatnonzero(labels == c) for c in range(2)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        shared = SharedClassPairKernels(computer, partition, enabled=False)
        flops_before = gpu_engine.counters.flops
        assert shared.prefetch([(np.array([0, 1]), 0, 1)]) == 0
        assert gpu_engine.counters.flops == flops_before
        assert shared.stats.prefetch_launches == 0
        assert shared.resident_bytes == 0

    def test_empty_request_list_is_a_noop(self, wave_setup):
        shared, computer, _, _ = wave_setup
        launches = computer.engine.counters.kernel_launches
        assert shared.prefetch([]) == 0
        assert computer.engine.counters.kernel_launches == launches

    def test_unknown_class_rejected(self, wave_setup):
        shared = wave_setup[0]
        with pytest.raises(ValidationError):
            shared.prefetch([(np.array([0]), 0, 9)])

    def test_eviction_under_pressure_keeps_fifo_order(self, gpu_engine, rng):
        x = rng.normal(size=(20, 4))
        labels = np.repeat([0, 1], 10)
        partition = {c: np.flatnonzero(labels == c) for c in range(2)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        segment_bytes = 10 * 8
        shared = SharedClassPairKernels(
            computer, partition, max_bytes=3 * segment_bytes
        )
        # Prefetch four class-0 segments into a three-segment store: the
        # first-stored segment (row 0) must be the one evicted.
        shared.prefetch([(np.array([0, 1, 2, 3]), 0, 0)])
        assert shared.resident_bytes == 3 * segment_bytes
        shared.stats = type(shared.stats)()  # reset accounting
        shared.segment(1, 0)
        shared.segment(2, 0)
        shared.segment(3, 0)
        assert shared.stats.values_computed == 0  # rows 1-3 still resident
        shared.segment(0, 0)  # evicted: must recompute
        assert shared.stats.values_computed == 10

    def test_evicted_prefetched_segment_recomputes_cleanly(
        self, gpu_engine, rng
    ):
        """Eviction must also clear the first-touch bookkeeping so a
        recomputed segment is not double-counted."""
        x = rng.normal(size=(20, 4))
        labels = np.repeat([0, 1], 10)
        partition = {c: np.flatnonzero(labels == c) for c in range(2)}
        computer = KernelRowComputer(gpu_engine, GaussianKernel(1.0), x)
        shared = SharedClassPairKernels(computer, partition, max_bytes=2 * 10 * 8)
        shared.prefetch([(np.array([0, 1, 2]), 0, 0)])  # row 0 evicted
        shared.segment(0, 0)  # recompute: a genuine miss
        assert shared.stats.segment_misses == 1
        shared.segment(0, 0)  # now a genuine hit (rows 1-2 were evicted)
        assert shared.stats.segment_hits == 1

    def test_wave_stats_match_sequential_schedule(self, gpu_engine, rng):
        """Aggregate hit/miss accounting is schedule-independent: a fused
        wave and a sequential replay of the same demand agree exactly."""
        x = rng.normal(size=(30, 5))
        labels = np.repeat([0, 1, 2], 10)
        partition = {c: np.flatnonzero(labels == c) for c in range(3)}
        demand = [
            (np.array([2, 4]), 0, 1),
            (np.array([2, 9]), 0, 2),
            (np.array([4, 9]), 1, 2),
        ]

        fused = SharedClassPairKernels(
            KernelRowComputer(gpu_engine, GaussianKernel(0.5), x), partition
        )
        fused.prefetch(demand)
        for ids, s, t in demand:
            fused.rows_for_pair(ids, s, t)

        sequential = SharedClassPairKernels(
            KernelRowComputer(gpu_engine, GaussianKernel(0.5), x), partition
        )
        for ids, s, t in demand:
            sequential.rows_for_pair(ids, s, t)

        assert fused.stats.segment_hits == sequential.stats.segment_hits
        assert fused.stats.segment_misses == sequential.stats.segment_misses
        assert fused.stats.values_reused == sequential.stats.values_reused
        assert fused.stats.values_computed == sequential.stats.values_computed
        assert fused.stats.hit_rate == sequential.stats.hit_rate
