"""Unit tests for model containers and persistence."""

import io

import numpy as np
import pytest

from repro import GMPSVC, load_model, save_model
from repro.core.predictor import PredictorConfig, predict_proba_model
from repro.data import gaussian_blobs
from repro.exceptions import ModelFormatError, ValidationError
from repro.gpusim import scaled_tesla_p100
from repro.model import MPSVMModel
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def fitted():
    x, y = gaussian_blobs(120, 6, 3, seed=2)
    clf = GMPSVC(C=5.0, gamma=0.4, working_set_size=32).fit(x, y)
    return clf, x, y


class TestModelContainer:
    def test_pair_bookkeeping(self, fitted):
        model = fitted[0].model_
        assert model.n_classes == 3
        assert len(model.records) == 3
        assert model.pairs == [(0, 1), (0, 2), (1, 2)]

    def test_record_lookup(self, fitted):
        model = fitted[0].model_
        assert model.record_for(0, 2).s == 0
        with pytest.raises(ValidationError):
            model.record_for(2, 0)

    def test_bias_of_last_svm(self, fitted):
        model = fitted[0].model_
        assert model.bias_of_last_svm == model.records[-1].bias

    def test_label_mapping(self, fitted):
        model = fitted[0].model_
        assert np.array_equal(
            model.labels_from_positions(np.array([0, 2])), model.classes[[0, 2]]
        )

    def test_record_count_validated(self, fitted):
        model = fitted[0].model_
        with pytest.raises(ValidationError):
            MPSVMModel(
                classes=model.classes,
                kernel=model.kernel,
                penalty=model.penalty,
                records=model.records[:1],
                sv_pool=model.sv_pool,
            )

    def test_probability_requires_sigmoids(self, fitted):
        model = fitted[0].model_
        stripped = [
            type(rec)(
                s=rec.s, t=rec.t,
                global_sv_indices=rec.global_sv_indices,
                coefficients=rec.coefficients, bias=rec.bias, sigmoid=None,
            )
            for rec in model.records
        ]
        with pytest.raises(ValidationError):
            MPSVMModel(
                classes=model.classes,
                kernel=model.kernel,
                penalty=model.penalty,
                records=stripped,
                sv_pool=model.sv_pool,
                probability=True,
            )


class TestPersistence:
    def roundtrip(self, model):
        buffer = io.StringIO()
        save_model(model, buffer)
        buffer.seek(0)
        return load_model(buffer)

    def test_roundtrip_predictions_identical(self, fitted):
        clf, x, _ = fitted
        reloaded = self.roundtrip(clf.model_)
        config = PredictorConfig(device=scaled_tesla_p100())
        original, _ = predict_proba_model(config, clf.model_, x)
        restored, _ = predict_proba_model(config, reloaded, x)
        assert np.allclose(original, restored, atol=1e-12)

    def test_roundtrip_metadata(self, fitted):
        model = fitted[0].model_
        reloaded = self.roundtrip(model)
        assert np.array_equal(reloaded.classes, model.classes)
        assert reloaded.kernel == model.kernel
        assert reloaded.penalty == model.penalty
        assert reloaded.probability == model.probability
        for a, b in zip(reloaded.records, model.records):
            assert (a.s, a.t) == (b.s, b.t)
            assert a.bias == b.bias
            assert a.sigmoid.a == b.sigmoid.a

    def test_roundtrip_sparse_training_data(self):
        from repro.data import binary01_features

        x, y = binary01_features(80, 60, 2, active_per_row=6, seed=9)
        clf = GMPSVC(C=10.0, gamma=0.5, working_set_size=32).fit(x, y)
        reloaded = self.roundtrip(clf.model_)
        assert isinstance(reloaded.sv_pool.pool_data, CSRMatrix)
        config = PredictorConfig(device=scaled_tesla_p100())
        original, _ = predict_proba_model(config, clf.model_, x)
        restored, _ = predict_proba_model(config, reloaded, x)
        assert np.allclose(original, restored, atol=1e-12)

    def test_file_path_roundtrip(self, fitted, tmp_path):
        clf = fitted[0]
        path = tmp_path / "model.txt"
        clf.save(path)
        reloaded = load_model(path)
        assert reloaded.n_classes == 3

    def test_rejects_wrong_magic(self):
        with pytest.raises(ModelFormatError, match="not a"):
            load_model(io.StringIO("something-else 1\n"))

    def test_rejects_wrong_version(self):
        with pytest.raises(ModelFormatError, match="version"):
            load_model(io.StringIO("repro-mpsvm 99\n"))

    def test_version_error_names_expected_and_found(self):
        """Forward compatibility: a clear expected-vs-found diagnosis."""
        from repro.model.persistence import FORMAT_VERSION

        with pytest.raises(ModelFormatError) as excinfo:
            load_model(io.StringIO("repro-mpsvm 99\n"))
        message = str(excinfo.value)
        assert f"expected {FORMAT_VERSION}" in message
        assert "found 99" in message

    def test_non_integer_version_is_format_error(self):
        """A mangled version field must not leak a bare ValueError."""
        with pytest.raises(ModelFormatError, match="expected an integer"):
            load_model(io.StringIO("repro-mpsvm banana\n"))

    def test_future_version_of_valid_payload_rejected(self, fitted):
        """A well-formed file from a hypothetical future writer still
        fails with the version diagnosis, not a parse error mid-file."""
        buffer = io.StringIO()
        save_model(fitted[0].model_, buffer)
        lines = buffer.getvalue().splitlines()
        lines[0] = "repro-mpsvm 2"
        with pytest.raises(ModelFormatError, match="expected 1, found 2"):
            load_model(io.StringIO("\n".join(lines) + "\n"))

    def test_rejects_truncated_file(self, fitted):
        buffer = io.StringIO()
        save_model(fitted[0].model_, buffer)
        text = buffer.getvalue()
        truncated = "\n".join(text.splitlines()[:5])
        with pytest.raises(ModelFormatError):
            load_model(io.StringIO(truncated))

    def test_integer_labels_restored_as_integers(self, fitted):
        reloaded = self.roundtrip(fitted[0].model_)
        assert reloaded.classes.dtype == np.int64
