"""Unit tests for model containers and persistence."""

import io

import numpy as np
import pytest

from repro import GMPSVC, load_model, save_model
from repro.core.predictor import PredictorConfig, predict_proba_model
from repro.data import gaussian_blobs
from repro.exceptions import ModelFormatError, ValidationError
from repro.gpusim import scaled_tesla_p100
from repro.model import MPSVMModel
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def fitted():
    x, y = gaussian_blobs(120, 6, 3, seed=2)
    clf = GMPSVC(C=5.0, gamma=0.4, working_set_size=32).fit(x, y)
    return clf, x, y


class TestModelContainer:
    def test_pair_bookkeeping(self, fitted):
        model = fitted[0].model_
        assert model.n_classes == 3
        assert len(model.records) == 3
        assert model.pairs == [(0, 1), (0, 2), (1, 2)]

    def test_record_lookup(self, fitted):
        model = fitted[0].model_
        assert model.record_for(0, 2).s == 0
        with pytest.raises(ValidationError):
            model.record_for(2, 0)

    def test_bias_of_last_svm(self, fitted):
        model = fitted[0].model_
        assert model.bias_of_last_svm == model.records[-1].bias

    def test_label_mapping(self, fitted):
        model = fitted[0].model_
        assert np.array_equal(
            model.labels_from_positions(np.array([0, 2])), model.classes[[0, 2]]
        )

    def test_record_count_validated(self, fitted):
        model = fitted[0].model_
        with pytest.raises(ValidationError):
            MPSVMModel(
                classes=model.classes,
                kernel=model.kernel,
                penalty=model.penalty,
                records=model.records[:1],
                sv_pool=model.sv_pool,
            )

    def test_probability_requires_sigmoids(self, fitted):
        model = fitted[0].model_
        stripped = [
            type(rec)(
                s=rec.s, t=rec.t,
                global_sv_indices=rec.global_sv_indices,
                coefficients=rec.coefficients, bias=rec.bias, sigmoid=None,
            )
            for rec in model.records
        ]
        with pytest.raises(ValidationError):
            MPSVMModel(
                classes=model.classes,
                kernel=model.kernel,
                penalty=model.penalty,
                records=stripped,
                sv_pool=model.sv_pool,
                probability=True,
            )


class TestPersistence:
    def roundtrip(self, model):
        buffer = io.StringIO()
        save_model(model, buffer)
        buffer.seek(0)
        return load_model(buffer)

    def test_roundtrip_predictions_identical(self, fitted):
        clf, x, _ = fitted
        reloaded = self.roundtrip(clf.model_)
        config = PredictorConfig(device=scaled_tesla_p100())
        original, _ = predict_proba_model(config, clf.model_, x)
        restored, _ = predict_proba_model(config, reloaded, x)
        assert np.allclose(original, restored, atol=1e-12)

    def test_roundtrip_metadata(self, fitted):
        model = fitted[0].model_
        reloaded = self.roundtrip(model)
        assert np.array_equal(reloaded.classes, model.classes)
        assert reloaded.kernel == model.kernel
        assert reloaded.penalty == model.penalty
        assert reloaded.probability == model.probability
        for a, b in zip(reloaded.records, model.records):
            assert (a.s, a.t) == (b.s, b.t)
            assert a.bias == b.bias
            assert a.sigmoid.a == b.sigmoid.a

    def test_roundtrip_sparse_training_data(self):
        from repro.data import binary01_features

        x, y = binary01_features(80, 60, 2, active_per_row=6, seed=9)
        clf = GMPSVC(C=10.0, gamma=0.5, working_set_size=32).fit(x, y)
        reloaded = self.roundtrip(clf.model_)
        assert isinstance(reloaded.sv_pool.pool_data, CSRMatrix)
        config = PredictorConfig(device=scaled_tesla_p100())
        original, _ = predict_proba_model(config, clf.model_, x)
        restored, _ = predict_proba_model(config, reloaded, x)
        assert np.allclose(original, restored, atol=1e-12)

    def test_file_path_roundtrip(self, fitted, tmp_path):
        clf = fitted[0]
        path = tmp_path / "model.txt"
        clf.save(path)
        reloaded = load_model(path)
        assert reloaded.n_classes == 3

    def test_rejects_wrong_magic(self):
        with pytest.raises(ModelFormatError, match="not a"):
            load_model(io.StringIO("something-else 1\n"))

    def test_rejects_wrong_version(self):
        with pytest.raises(ModelFormatError, match="version"):
            load_model(io.StringIO("repro-mpsvm 99\n"))

    def test_version_error_names_expected_and_found(self):
        """Forward compatibility: a clear expected-vs-found diagnosis."""
        from repro.model.persistence import FORMAT_VERSION

        with pytest.raises(ModelFormatError) as excinfo:
            load_model(io.StringIO("repro-mpsvm 99\n"))
        message = str(excinfo.value)
        assert f"expected {FORMAT_VERSION}" in message
        assert "found 99" in message

    def test_non_integer_version_is_format_error(self):
        """A mangled version field must not leak a bare ValueError."""
        with pytest.raises(ModelFormatError, match="expected an integer"):
            load_model(io.StringIO("repro-mpsvm banana\n"))

    def test_future_version_of_valid_payload_rejected(self, fitted):
        """A well-formed file from a hypothetical future writer still
        fails with the version diagnosis, not a parse error mid-file."""
        buffer = io.StringIO()
        save_model(fitted[0].model_, buffer)
        lines = buffer.getvalue().splitlines()
        lines[0] = "repro-mpsvm 2"
        with pytest.raises(ModelFormatError, match="expected 1, found 2"):
            load_model(io.StringIO("\n".join(lines) + "\n"))

    def test_rejects_truncated_file(self, fitted):
        buffer = io.StringIO()
        save_model(fitted[0].model_, buffer)
        text = buffer.getvalue()
        truncated = "\n".join(text.splitlines()[:5])
        with pytest.raises(ModelFormatError):
            load_model(io.StringIO(truncated))

    def test_integer_labels_restored_as_integers(self, fitted):
        reloaded = self.roundtrip(fitted[0].model_)
        assert reloaded.classes.dtype == np.int64


class TestPersistenceEdgeCases:
    def roundtrip(self, model):
        buffer = io.StringIO()
        save_model(model, buffer)
        buffer.seek(0)
        return load_model(buffer)

    def test_float_labels_roundtrip_exactly(self):
        """Regression: ``%g`` rendered class labels at 6 significant
        digits, so 1234567.5 reloaded as 1234570.0 — labels must use
        ``.17g`` like every other float in the format."""
        x, y_int = gaussian_blobs(90, 4, 3, seed=5)
        label_values = np.array([0.5, 1234567.5, -2.25])
        y = label_values[y_int]
        clf = GMPSVC(C=2.0, gamma=0.5, working_set_size=32).fit(x, y)
        reloaded = self.roundtrip(clf.model_)
        assert np.array_equal(reloaded.classes, np.sort(label_values))
        config = PredictorConfig(device=scaled_tesla_p100())
        original, _ = predict_proba_model(config, clf.model_, x)
        restored, _ = predict_proba_model(config, reloaded, x)
        # CSR-pool kernel sums reorder vs the dense original, so exact
        # equality is out of scope here (the label fidelity is the point).
        assert np.allclose(original, restored, atol=1e-12)

    def test_out_of_range_pool_position_rejected(self, fitted):
        """Regression: a positions entry past the pool bounds used to be
        accepted and crash (or read garbage) at prediction time."""
        buffer = io.StringIO()
        save_model(fitted[0].model_, buffer)
        lines = buffer.getvalue().splitlines()
        stanza = next(
            i for i, line in enumerate(lines) if line.startswith("svm ")
        )
        positions = lines[stanza + 1].split()
        positions[0] = str(fitted[0].model_.sv_pool.n_pool + 5)
        lines[stanza + 1] = " ".join(positions)
        with pytest.raises(ModelFormatError, match="out of range"):
            load_model(io.StringIO("\n".join(lines) + "\n"))

    def test_negative_pool_position_rejected(self, fitted):
        buffer = io.StringIO()
        save_model(fitted[0].model_, buffer)
        lines = buffer.getvalue().splitlines()
        stanza = next(
            i for i, line in enumerate(lines) if line.startswith("svm ")
        )
        positions = lines[stanza + 1].split()
        positions[-1] = "-1"
        lines[stanza + 1] = " ".join(positions)
        with pytest.raises(ModelFormatError, match="out of range"):
            load_model(io.StringIO("\n".join(lines) + "\n"))

    def test_dense_pool_values_preserved_exactly(self, fitted):
        """Dense-trained pools reload as CSR with bitwise-equal values."""
        from repro.sparse import ops as mops

        model = fitted[0].model_
        reloaded = self.roundtrip(model)
        assert isinstance(reloaded.sv_pool.pool_data, CSRMatrix)
        assert np.array_equal(
            mops.to_dense(reloaded.sv_pool.pool_data),
            mops.to_dense(model.sv_pool.pool_data),
        )

    def test_probability_false_roundtrip(self):
        x, y = gaussian_blobs(90, 4, 3, seed=6)
        clf = GMPSVC(
            C=2.0, gamma=0.5, probability=False, working_set_size=32
        ).fit(x, y)
        reloaded = self.roundtrip(clf.model_)
        assert reloaded.probability is False
        assert all(rec.sigmoid is None for rec in reloaded.records)
        config = PredictorConfig(device=scaled_tesla_p100())
        from repro.core.predictor import predict_labels_model

        original, _ = predict_labels_model(config, clf.model_, x)
        restored, _ = predict_labels_model(config, reloaded, x)
        assert np.array_equal(np.asarray(original), np.asarray(restored))

    def test_single_pair_model_roundtrip(self):
        """Binary problems persist one stanza and reload cleanly."""
        x, y = gaussian_blobs(80, 4, 2, seed=7)
        clf = GMPSVC(C=2.0, gamma=0.5, working_set_size=32).fit(x, y)
        assert len(clf.model_.records) == 1
        reloaded = self.roundtrip(clf.model_)
        assert len(reloaded.records) == 1
        config = PredictorConfig(device=scaled_tesla_p100())
        original, _ = predict_proba_model(config, clf.model_, x)
        restored, _ = predict_proba_model(config, reloaded, x)
        assert np.allclose(original, restored, atol=1e-12)

    @pytest.mark.parametrize("keep_fraction", [0.3, 0.6, 0.95])
    def test_truncation_anywhere_is_a_format_error(
        self, fitted, keep_fraction
    ):
        """Cutting the file mid-stanza or mid-SV-section must raise
        ModelFormatError, never an IndexError or a silently short model."""
        buffer = io.StringIO()
        save_model(fitted[0].model_, buffer)
        lines = buffer.getvalue().splitlines()
        cut = max(1, int(len(lines) * keep_fraction))
        with pytest.raises(ModelFormatError):
            load_model(io.StringIO("\n".join(lines[:cut]) + "\n"))
