"""Unit tests for cross-validation and grid search."""

import numpy as np
import pytest

from repro import GMPSVC, ValidationError
from repro.data import binary01_features, gaussian_blobs
from repro.model_selection import (
    GridSearchResult,
    cross_val_score,
    grid_search,
    k_fold_indices,
)


class TestKFold:
    def test_partition_property(self):
        y = np.arange(20) % 2
        splits = k_fold_indices(y, 4, seed=1)
        assert len(splits) == 4
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test.tolist()) == list(range(20))
        for train, test in splits:
            assert np.intersect1d(train, test).size == 0

    def test_stratification(self):
        y = np.array([0] * 16 + [1] * 8)
        for train, test in k_fold_indices(y, 4, seed=2):
            assert np.count_nonzero(y[test] == 0) == 4
            assert np.count_nonzero(y[test] == 1) == 2

    def test_deterministic(self):
        y = np.arange(30) % 3
        a = k_fold_indices(y, 3, seed=5)
        b = k_fold_indices(y, 3, seed=5)
        for (ta, sa), (tb, sb) in zip(a, b):
            assert np.array_equal(ta, tb) and np.array_equal(sa, sb)

    def test_validation(self):
        with pytest.raises(ValidationError):
            k_fold_indices(np.zeros(10), 1)
        with pytest.raises(ValidationError):
            k_fold_indices(np.zeros(3), 5)


class TestCrossValScore:
    def test_scores_shape_and_range(self):
        x, y = gaussian_blobs(120, 4, 2, seed=3)
        scores = cross_val_score(
            lambda: GMPSVC(C=10.0, gamma=0.5, working_set_size=16),
            x, y, folds=4,
        )
        assert scores.shape == (4,)
        assert np.all((scores >= 0) & (scores <= 1))
        assert scores.mean() > 0.9

    def test_works_on_sparse_data(self):
        x, y = binary01_features(100, 60, 2, active_per_row=8, seed=4)
        scores = cross_val_score(
            lambda: GMPSVC(C=10.0, gamma=0.5, working_set_size=16),
            x, y, folds=3,
        )
        assert scores.mean() > 0.8


class TestGridSearch:
    @pytest.fixture(scope="class")
    def problem(self):
        return gaussian_blobs(150, 4, 3, separation=1.2, noise=1.2, seed=6)

    def test_finds_a_reasonable_configuration(self, problem):
        x, y = problem
        result = grid_search(
            lambda **p: GMPSVC(working_set_size=16, **p),
            {"C": [1e-4, 10.0], "gamma": [1e-6, 0.5]},
            x, y, folds=3,
        )
        assert isinstance(result, GridSearchResult)
        assert result.best_score > 0.85
        assert len(result.results) == 4
        # The fully degenerate corner (tiny C AND tiny gamma) scores near
        # chance and must not win.
        assert result.best_params != {"C": 1e-4, "gamma": 1e-6}

    def test_results_cover_full_grid(self, problem):
        x, y = problem
        result = grid_search(
            lambda **p: GMPSVC(working_set_size=16, **p),
            {"C": [1.0, 10.0], "gamma": [0.5]},
            x, y, folds=3,
        )
        params_seen = [tuple(sorted(r["params"].items())) for r in result.results]
        assert len(set(params_seen)) == 2

    def test_table_rendering(self, problem):
        x, y = problem
        result = grid_search(
            lambda **p: GMPSVC(working_set_size=16, **p),
            {"C": [1.0]}, x, y, folds=3,
        )
        table = result.as_table()
        assert "C=1" in table and "mean acc" in table

    def test_empty_grid_rejected(self, problem):
        x, y = problem
        with pytest.raises(ValidationError):
            grid_search(lambda **p: GMPSVC(**p), {}, x, y)
        with pytest.raises(ValidationError):
            grid_search(lambda **p: GMPSVC(**p), {"C": []}, x, y)

    def test_deterministic(self, problem):
        x, y = problem
        kwargs = dict(folds=3, seed=9)
        a = grid_search(
            lambda **p: GMPSVC(working_set_size=16, **p),
            {"C": [1.0, 10.0]}, x, y, **kwargs,
        )
        b = grid_search(
            lambda **p: GMPSVC(working_set_size=16, **p),
            {"C": [1.0, 10.0]}, x, y, **kwargs,
        )
        assert a.best_params == b.best_params
        assert a.best_score == b.best_score
