"""Unit tests for decomposition, SV sharing and voting."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kernels import GaussianKernel
from repro.multiclass import (
    SupportVectorPool,
    class_partition,
    make_pairs,
    ovo_vote,
    pair_problems,
)
from repro.multiclass.sv_sharing import PooledSVM


class TestPartition:
    def test_sorted_classes_and_indices(self):
        y = np.array([5, 2, 5, 9, 2])
        classes, partition = class_partition(y)
        assert classes.tolist() == [2, 5, 9]
        assert partition[0].tolist() == [1, 4]
        assert partition[1].tolist() == [0, 2]
        assert partition[2].tolist() == [3]

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError):
            class_partition(np.array([1, 1]))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            class_partition(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            class_partition(np.array([1.0, np.nan]))


class TestPairs:
    def test_pair_count(self):
        for k in range(2, 7):
            assert len(make_pairs(k)) == k * (k - 1) // 2

    def test_pair_order_matches_libsvm(self):
        assert make_pairs(3) == [(0, 1), (0, 2), (1, 2)]

    def test_problems_have_correct_labels(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        classes, partition = class_partition(y)
        problems = list(pair_problems(classes, partition))
        first = problems[0]  # pair (0, 1)
        assert first.n == 4
        assert first.labels.tolist() == [1.0, 1.0, -1.0, -1.0]
        assert y[first.global_indices].tolist() == [0, 0, 1, 1]
        assert first.n_positive == 2 and first.n_negative == 2


class TestVoting:
    def test_unanimous_vote(self):
        pairs = make_pairs(3)
        decisions = np.array([[1.0, 1.0, 1.0]])  # class 0 beats 1 and 2; 1 beats 2
        assert ovo_vote(decisions, pairs, 3).tolist() == [0]

    def test_majority_vote(self):
        pairs = make_pairs(3)
        decisions = np.array([[-1.0, -1.0, 1.0]])  # 1 beats 0; 2 beats 0; 1 beats 2
        assert ovo_vote(decisions, pairs, 3).tolist() == [1]

    def test_tie_breaks_to_lower_class(self):
        pairs = make_pairs(3)
        decisions = np.array([[1.0, -1.0, 1.0]])  # every class gets one vote
        assert ovo_vote(decisions, pairs, 3).tolist() == [0]

    def test_zero_decision_votes_for_first_class(self):
        pairs = make_pairs(2)
        assert ovo_vote(np.array([[0.0]]), pairs, 2).tolist() == [0]

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            ovo_vote(np.ones((2, 2)), make_pairs(3), 3)

    def test_pair_range_validation(self):
        with pytest.raises(ValidationError):
            ovo_vote(np.ones((1, 1)), [(0, 5)], 3)


class TestSupportVectorPool:
    def build_pool(self, rng, k=3, n=30):
        x = rng.normal(size=(n, 4))
        per_svm = []
        for pair_index, (s, t) in enumerate(make_pairs(k)):
            indices = np.arange(pair_index * 5, pair_index * 5 + 10) % n
            indices = np.unique(indices)
            coefficients = rng.normal(size=indices.size)
            per_svm.append((s, t, indices, coefficients, 0.1 * pair_index))
        return SupportVectorPool.build(x, per_svm), x, per_svm

    def test_pool_deduplicates(self, rng):
        pool, _, per_svm = self.build_pool(rng)
        total_refs = sum(len(entry[2]) for entry in per_svm)
        assert pool.n_references == total_refs
        assert pool.n_pool < total_refs
        assert pool.sharing_factor > 1.0

    def test_pool_positions_map_back_to_globals(self, rng):
        pool, x, per_svm = self.build_pool(rng)
        for svm, (s, t, indices, _, _) in zip(pool.svms, per_svm):
            recovered = pool.pool_global_indices[svm.pool_positions]
            assert np.array_equal(np.sort(recovered), np.sort(indices))

    def test_decision_values_shared_equals_unshared(self, gpu_engine, rng):
        pool, x, _ = self.build_pool(rng)
        test = rng.normal(size=(7, 4))
        kernel = GaussianKernel(0.5)
        shared = pool.decision_values(gpu_engine, kernel, test, shared=True)
        unshared = pool.decision_values(gpu_engine, kernel, test, shared=False)
        assert np.allclose(shared, unshared, atol=1e-10)

    def test_decision_values_match_direct_formula(self, gpu_engine, rng):
        pool, x, per_svm = self.build_pool(rng)
        test = rng.normal(size=(5, 4))
        kernel = GaussianKernel(0.5)
        values = pool.decision_values(gpu_engine, kernel, test, shared=True)
        for column, (s, t, indices, coefficients, bias) in enumerate(per_svm):
            gram = kernel.pairwise(gpu_engine, test, x[np.sort(indices)], category="k")
            order = np.argsort(indices)
            expected = gram @ coefficients[order] + bias
            assert np.allclose(values[:, column], expected, atol=1e-10)

    def test_sharing_reduces_counted_flops(self, rng):
        from repro.gpusim import make_engine, scaled_tesla_p100

        pool, _, _ = self.build_pool(rng)
        test = rng.normal(size=(20, 4))
        kernel = GaussianKernel(0.5)
        shared_engine = make_engine(scaled_tesla_p100())
        pool.decision_values(shared_engine, kernel, test, shared=True)
        unshared_engine = make_engine(scaled_tesla_p100())
        pool.decision_values(unshared_engine, kernel, test, shared=False)
        assert shared_engine.counters.flops < unshared_engine.counters.flops

    def test_coefficient_mismatch_rejected(self, rng):
        x = rng.normal(size=(10, 3))
        with pytest.raises(ValidationError):
            SupportVectorPool.build(
                x, [(0, 1, np.array([1, 2]), np.array([0.5]), 0.0)]
            )

    def test_no_support_vectors_rejected(self, rng):
        with pytest.raises(ValidationError):
            SupportVectorPool.build(rng.normal(size=(5, 2)), [])
