"""Unit tests for the one-vs-all decomposition."""

import io

import numpy as np
import pytest

from repro import GMPSVC, load_model, save_model
from repro.data import gaussian_blobs
from repro.exceptions import ValidationError
from repro.multiclass import REST, class_partition, ova_positions, ova_problems


@pytest.fixture(scope="module")
def four_class():
    return gaussian_blobs(240, 6, 4, seed=13)


class TestDecomposition:
    def test_problem_count_and_shape(self):
        y = np.array([0, 1, 2, 0, 1, 2, 0])
        classes, partition = class_partition(y)
        problems = list(ova_problems(classes, partition))
        assert len(problems) == 3
        for problem in problems:
            assert problem.t == REST
            assert problem.n == 7  # every problem covers the whole set
            assert problem.n_positive == np.count_nonzero(y == problem.s)

    def test_labels_are_one_vs_rest(self):
        y = np.array([5, 7, 5, 9])
        classes, partition = class_partition(y)
        first = next(iter(ova_problems(classes, partition)))
        restored = y[first.global_indices]
        assert np.all((restored == 5) == (first.labels > 0))

    def test_positions_argmax(self):
        decisions = np.array([[0.1, 0.9, -1.0], [2.0, 0.0, 1.0]])
        assert ova_positions(decisions).tolist() == [1, 0]

    def test_positions_shape_check(self):
        with pytest.raises(ValidationError):
            ova_positions(np.ones(3))


class TestEstimator:
    def test_trains_k_svms(self, four_class):
        x, y = four_class
        clf = GMPSVC(C=10.0, gamma=0.3, decomposition="ova").fit(x, y)
        assert len(clf.model_.records) == 4
        assert clf.model_.strategy == "ova"
        assert clf.score(x, y) > 0.95

    def test_ovo_and_ova_agree_on_separable_data(self, four_class):
        x, y = four_class
        ovo = GMPSVC(C=10.0, gamma=0.3).fit(x, y)
        ova = GMPSVC(C=10.0, gamma=0.3, decomposition="ova").fit(x, y)
        agreement = float(np.mean(ovo.predict(x) == ova.predict(x)))
        assert agreement > 0.95

    def test_probabilities_valid(self, four_class):
        x, y = four_class
        clf = GMPSVC(C=10.0, gamma=0.3, decomposition="ova").fit(x, y)
        proba = clf.predict_proba(x)
        assert proba.shape == (x.shape[0], 4)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_decision_function_has_k_columns(self, four_class):
        x, y = four_class
        clf = GMPSVC(C=10.0, gamma=0.3, decomposition="ova").fit(x, y)
        assert clf.decision_function(x).shape == (x.shape[0], 4)

    def test_voting_prediction_without_probability(self, four_class):
        x, y = four_class
        clf = GMPSVC(
            C=10.0, gamma=0.3, decomposition="ova", probability=False
        ).fit(x, y)
        assert clf.score(x, y) > 0.95

    def test_invalid_decomposition_rejected(self, four_class):
        x, y = four_class
        with pytest.raises(ValidationError):
            GMPSVC(decomposition="tournament").fit(x, y)

    def test_persistence_roundtrip(self, four_class):
        x, y = four_class
        clf = GMPSVC(C=10.0, gamma=0.3, decomposition="ova").fit(x, y)
        buffer = io.StringIO()
        save_model(clf.model_, buffer)
        buffer.seek(0)
        restored = load_model(buffer)
        assert restored.strategy == "ova"
        from repro.core.predictor import PredictorConfig, predict_proba_model
        from repro.gpusim import scaled_tesla_p100

        config = PredictorConfig(device=scaled_tesla_p100())
        original = clf.predict_proba(x)
        loaded, _ = predict_proba_model(config, restored, x)
        assert np.allclose(original, loaded, atol=1e-12)

    def test_binary_problem_with_ova(self):
        x, y = gaussian_blobs(100, 4, 2, seed=2)
        clf = GMPSVC(C=5.0, gamma=0.5, decomposition="ova").fit(x, y)
        assert len(clf.model_.records) == 2  # one per class, mirrored
        assert clf.score(x, y) > 0.95
