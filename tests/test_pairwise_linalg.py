"""Unit tests for Gaussian elimination and pairwise coupling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError, ValidationError
from repro.probability import (
    couple_batch,
    couple_probabilities,
    gaussian_elimination,
    pairwise_matrix_from_estimates,
)


class TestGaussianElimination:
    def test_matches_numpy_on_random_systems(self, rng):
        for _ in range(20):
            k = rng.integers(2, 10)
            a = rng.normal(size=(k, k)) + k * np.eye(k)
            b = rng.normal(size=k)
            assert np.allclose(
                gaussian_elimination(a, b), np.linalg.solve(a, b), atol=1e-9
            )

    def test_requires_pivoting(self):
        # Zero leading pivot: naive elimination would divide by zero.
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        b = np.array([2.0, 3.0])
        assert np.allclose(gaussian_elimination(a, b), [3.0, 2.0])

    def test_singular_matrix_raises(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(SolverError, match="singular"):
            gaussian_elimination(a, np.ones(2))

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            gaussian_elimination(np.ones((2, 3)), np.ones(2))
        with pytest.raises(ValidationError):
            gaussian_elimination(np.eye(2), np.ones(3))

    def test_does_not_mutate_inputs(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([1.0, 2.0])
        a_copy, b_copy = a.copy(), b.copy()
        gaussian_elimination(a, b)
        assert np.array_equal(a, a_copy) and np.array_equal(b, b_copy)

    def test_1x1_system(self):
        assert gaussian_elimination(np.array([[4.0]]), np.array([8.0]))[0] == 2.0


class TestPairwiseMatrix:
    def test_assembles_full_matrix(self):
        r = pairwise_matrix_from_estimates({(0, 1): 0.8, (0, 2): 0.6, (1, 2): 0.4}, 3)
        assert r[0, 1] == pytest.approx(0.8)
        assert r[1, 0] == pytest.approx(0.2)
        assert r[2, 1] == pytest.approx(0.6)

    def test_clips_extreme_probabilities(self):
        r = pairwise_matrix_from_estimates({(0, 1): 1.0}, 2)
        assert r[0, 1] < 1.0 and r[1, 0] > 0.0

    def test_missing_pair_rejected(self):
        with pytest.raises(ValidationError, match="expected 3"):
            pairwise_matrix_from_estimates({(0, 1): 0.5}, 3)

    def test_bad_pair_rejected(self):
        with pytest.raises(ValidationError):
            pairwise_matrix_from_estimates({(1, 0): 0.5}, 2)


class TestCoupling:
    def test_methods_agree(self, gpu_engine):
        r = pairwise_matrix_from_estimates(
            {(0, 1): 0.8, (0, 2): 0.6, (1, 2): 0.4}, 3
        )
        p_direct = couple_probabilities(gpu_engine, r, method="eq15")
        p_iterative = couple_probabilities(gpu_engine, r, method="iterative")
        assert np.allclose(p_direct, p_iterative, atol=2e-3)

    def test_simplex_constraints(self, gpu_engine, rng):
        for _ in range(10):
            k = int(rng.integers(2, 7))
            estimates = {
                (s, t): float(rng.uniform(0.05, 0.95))
                for s in range(k)
                for t in range(s + 1, k)
            }
            r = pairwise_matrix_from_estimates(estimates, k)
            p = couple_probabilities(gpu_engine, r)
            assert p.sum() == pytest.approx(1.0)
            assert np.all(p >= 0)

    def test_dominant_class_wins(self, gpu_engine):
        r = pairwise_matrix_from_estimates(
            {(0, 1): 0.9, (0, 2): 0.9, (1, 2): 0.5}, 3
        )
        p = couple_probabilities(gpu_engine, r)
        assert np.argmax(p) == 0

    def test_uniform_estimates_give_uniform_probability(self, gpu_engine):
        r = pairwise_matrix_from_estimates(
            {(0, 1): 0.5, (0, 2): 0.5, (1, 2): 0.5}, 3
        )
        p = couple_probabilities(gpu_engine, r)
        assert np.allclose(p, 1.0 / 3.0, atol=1e-9)

    def test_two_class_case_matches_local_estimate(self, gpu_engine):
        r = pairwise_matrix_from_estimates({(0, 1): 0.7}, 2)
        p = couple_probabilities(gpu_engine, r)
        assert p[0] == pytest.approx(0.7, abs=1e-6)

    def test_optimality_of_solution(self, gpu_engine, rng):
        """The coupled p minimises Problem (14) over the simplex."""
        estimates = {
            (s, t): float(rng.uniform(0.1, 0.9))
            for s in range(4)
            for t in range(s + 1, 4)
        }
        r = pairwise_matrix_from_estimates(estimates, 4)
        p = couple_probabilities(gpu_engine, r)

        def objective(prob):
            total = 0.0
            for s in range(4):
                for t in range(4):
                    if s != t:
                        total += (r[t, s] * prob[s] - r[s, t] * prob[t]) ** 2
            return total

        base = objective(p)
        for _ in range(50):
            candidate = np.abs(p + rng.normal(scale=0.02, size=4))
            candidate /= candidate.sum()
            assert objective(candidate) >= base - 1e-9

    def test_bad_method(self, gpu_engine):
        r = pairwise_matrix_from_estimates({(0, 1): 0.5}, 2)
        with pytest.raises(ValidationError):
            couple_probabilities(gpu_engine, r, method="magic")

    def test_shape_validation(self, gpu_engine):
        with pytest.raises(ValidationError):
            couple_probabilities(gpu_engine, np.ones((2, 3)))


class TestBatch:
    def test_batch_matches_individual(self, gpu_engine, rng):
        k, m = 3, 5
        batch = np.empty((m, k, k))
        for i in range(m):
            estimates = {
                (s, t): float(rng.uniform(0.1, 0.9))
                for s in range(k)
                for t in range(s + 1, k)
            }
            batch[i] = pairwise_matrix_from_estimates(estimates, k)
        coupled = couple_batch(gpu_engine, batch)
        for i in range(m):
            individual = couple_probabilities(gpu_engine, batch[i])
            assert np.allclose(coupled[i], individual)

    def test_batch_shape_validation(self, gpu_engine):
        with pytest.raises(ValidationError):
            couple_batch(gpu_engine, np.ones((2, 3, 4)))


@given(st.integers(0, 1000), st.integers(2, 6))
@settings(max_examples=40, deadline=None)
def test_coupling_simplex_property(seed, k):
    from repro.gpusim import make_engine, scaled_tesla_p100

    engine = make_engine(scaled_tesla_p100())
    rng = np.random.default_rng(seed)
    estimates = {
        (s, t): float(rng.uniform(0.01, 0.99))
        for s in range(k)
        for t in range(s + 1, k)
    }
    r = pairwise_matrix_from_estimates(estimates, k)
    p = couple_probabilities(engine, r)
    assert p.sum() == pytest.approx(1.0)
    assert np.all((p >= 0) & (p <= 1))
