"""Unit tests for performance reporting helpers."""

import pytest

from repro.exceptions import ValidationError
from repro.gpusim import SimClock, TimeCharge
from repro.perf import PREDICT_GROUPS, TRAIN_GROUPS, grouped_fractions, speedup_table
from repro.perf.speedup import format_table


class TestGroupings:
    def test_train_groups_cover_solver_categories(self):
        for category in ("kernel_values", "subproblem", "selection", "f_update"):
            assert category in TRAIN_GROUPS

    def test_grouped_fractions(self):
        clock = SimClock()
        clock.charge("kernel_values", TimeCharge(0.0, 6.0))
        clock.charge("subproblem", TimeCharge(0.0, 3.0))
        clock.charge("selection", TimeCharge(0.0, 0.5))
        clock.charge("f_update", TimeCharge(0.0, 0.5))
        fractions = grouped_fractions(clock, TRAIN_GROUPS)
        assert fractions["kernel values"] == pytest.approx(0.6)
        assert fractions["subproblem"] == pytest.approx(0.3)
        assert fractions["other"] == pytest.approx(0.1)

    def test_predict_groups(self):
        clock = SimClock()
        clock.charge("decision_values", TimeCharge(0.0, 8.0))
        clock.charge("sigmoid", TimeCharge(0.0, 1.0))
        clock.charge("coupling", TimeCharge(0.0, 1.0))
        fractions = grouped_fractions(clock, PREDICT_GROUPS)
        assert fractions["decision values"] == pytest.approx(0.8)


class TestSpeedupTable:
    def test_basic_speedups(self):
        reference = {"adult": 1.0, "mnist": 2.0}
        others = {"libsvm": {"adult": 10.0, "mnist": 30.0}}
        table = speedup_table(reference, others)
        assert table["libsvm"]["adult"] == pytest.approx(10.0)
        assert table["libsvm"]["mnist"] == pytest.approx(15.0)

    def test_missing_reference_dataset(self):
        with pytest.raises(ValidationError):
            speedup_table({"adult": 1.0}, {"x": {"mnist": 2.0}})

    def test_nonpositive_reference(self):
        with pytest.raises(ValidationError):
            speedup_table({"adult": 0.0}, {"x": {"adult": 2.0}})

    def test_format_table_contains_values(self):
        text = format_table(
            {"libsvm": {"adult": 10.25}}, ["adult"], title="Speedups"
        )
        assert "Speedups" in text
        assert "libsvm" in text
        assert "10.25" in text

    def test_format_table_missing_cell(self):
        text = format_table({"a": {}}, ["col"])
        assert "-" in text
