"""Unit tests for Platt sigmoid fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.probability import fit_sigmoid, sigmoid_predict


def make_decisions(n=300, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    half = n // 2
    values = np.concatenate(
        [rng.normal(-gap, 1.0, half), rng.normal(gap, 1.0, n - half)]
    )
    labels = np.concatenate([-np.ones(half), np.ones(n - half)])
    return values, labels


class TestFit:
    def test_converges_on_clean_data(self, gpu_engine):
        values, labels = make_decisions()
        model = fit_sigmoid(gpu_engine, values, labels)
        assert model.converged
        assert model.a < 0  # decreasing in Av+B means increasing P with v

    def test_matches_scipy_optimum(self, gpu_engine):
        from scipy.optimize import minimize

        values, labels = make_decisions(seed=3)
        model = fit_sigmoid(gpu_engine, values, labels)
        n_pos = int((labels > 0).sum())
        n_neg = labels.size - n_pos
        targets = np.where(labels > 0, (n_pos + 1) / (n_pos + 2), 1 / (n_neg + 2))

        def objective(ab):
            fapb = ab[0] * values + ab[1]
            return np.sum(
                np.where(
                    fapb >= 0,
                    targets * fapb + np.log1p(np.exp(-fapb)),
                    (targets - 1) * fapb + np.log1p(np.exp(fapb)),
                )
            )

        reference = minimize(objective, [0.0, 0.0], method="Nelder-Mead",
                             options={"xatol": 1e-12, "fatol": 1e-14})
        assert model.a == pytest.approx(reference.x[0], abs=1e-3)
        assert model.b == pytest.approx(reference.x[1], abs=1e-3)

    def test_parallel_line_search_identical(self, gpu_engine, cpu_engine):
        values, labels = make_decisions(seed=7)
        sequential = fit_sigmoid(gpu_engine, values, labels, parallel_line_search=False)
        parallel = fit_sigmoid(cpu_engine, values, labels, parallel_line_search=True)
        assert sequential.a == parallel.a
        assert sequential.b == parallel.b
        assert sequential.iterations == parallel.iterations

    def test_probability_monotone_in_decision_value(self, gpu_engine):
        values, labels = make_decisions()
        model = fit_sigmoid(gpu_engine, values, labels)
        grid = np.linspace(-5, 5, 50)
        probabilities = model.predict(grid)
        assert np.all(np.diff(probabilities) >= 0)

    def test_extreme_decision_values_stable(self, gpu_engine):
        values = np.array([-1e4, -1.0, 1.0, 1e4])
        labels = np.array([-1.0, -1.0, 1.0, 1.0])
        model = fit_sigmoid(gpu_engine, values, labels)
        probabilities = model.predict(values)
        assert np.all(np.isfinite(probabilities))
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_imbalanced_classes(self, gpu_engine):
        rng = np.random.default_rng(5)
        values = np.concatenate([rng.normal(-2, 1, 290), rng.normal(2, 1, 10)])
        labels = np.concatenate([-np.ones(290), np.ones(10)])
        model = fit_sigmoid(gpu_engine, values, labels)
        assert model.converged
        # The prior shows up through the target smoothing.
        assert model.predict(np.array([0.0]))[0] < 0.5

    def test_label_value_mismatch(self, gpu_engine):
        with pytest.raises(ValidationError):
            fit_sigmoid(gpu_engine, np.ones(3), np.ones(2))

    def test_empty_input(self, gpu_engine):
        with pytest.raises(ValidationError):
            fit_sigmoid(gpu_engine, np.array([]), np.array([]))

    def test_random_decisions_give_flat_sigmoid(self, gpu_engine):
        rng = np.random.default_rng(11)
        values = rng.normal(size=400)
        labels = np.where(rng.random(400) > 0.5, 1.0, -1.0)
        model = fit_sigmoid(gpu_engine, values, labels)
        probabilities = model.predict(np.linspace(-3, 3, 7))
        assert np.all(np.abs(probabilities - 0.5) < 0.2)


class TestPredict:
    def test_sigmoid_formula(self):
        values = np.array([0.0, 1.0])
        out = sigmoid_predict(values, a=-1.0, b=0.0)
        assert out[0] == pytest.approx(0.5)
        assert out[1] == pytest.approx(1.0 / (1.0 + np.exp(-1.0)))

    def test_no_overflow(self):
        out = sigmoid_predict(np.array([-1e6, 1e6]), a=-1.0, b=0.0)
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)


@given(st.integers(0, 10_000), st.floats(0.5, 4.0))
@settings(max_examples=25, deadline=None)
def test_fit_probabilities_calibrated_on_midpoint(seed, gap):
    """P(y=1 | v=0) is near 1/2 when the sample is symmetric under v -> -v.

    The positive decision values are the mirrored negatives, so the Platt
    objective is symmetric in B and its optimum has P(0) = 1/2 exactly.  A
    free random draw of finite size does not have this property — chance
    asymmetry can push the fitted midpoint past any fixed band (with the
    old draw, seed=5031/gap=2.0 reached 0.712 against a bound of 0.7).
    """
    from repro.gpusim import make_engine, scaled_tesla_p100

    engine = make_engine(scaled_tesla_p100())
    rng = np.random.default_rng(seed)
    negatives = rng.normal(-gap, 1.0, 100)
    values = np.concatenate([negatives, -negatives])
    labels = np.concatenate([-np.ones(100), np.ones(100)])
    model = fit_sigmoid(engine, values, labels)
    midpoint_probability = model.predict(np.array([0.0]))[0]
    assert 0.4 < midpoint_probability < 0.6
