"""Snapshot of the stable public API surface.

``repro.__all__`` is a contract: additions are deliberate (update the
snapshot here in the same change), removals and signature changes are
breaking.  The deep-import paths the names come from stay importable as
implementation detail — the shim assertions below pin the aliasing.
"""

import inspect

import pytest

import repro

# The exact exported-name set.  Keep sorted; a failure here means the
# public surface changed — update this snapshot *deliberately*, in the
# same change, with a CHANGES.md note.
PUBLIC_API = [
    "BackendSpec",
    "CSRMatrix",
    "CascadeConfig",
    "CheckpointError",
    "ClusterSpec",
    "ComputeBackend",
    "ConvergenceWarning",
    "DeviceLostError",
    "DeviceMemoryError",
    "FaultInjector",
    "FaultPlan",
    "GMPSVC",
    "InferenceSession",
    "MicroBatcher",
    "ModelFormatError",
    "ModelRegistry",
    "NotFittedError",
    "OneClassSVM",
    "PredictorConfig",
    "RegistryError",
    "RegistryWatcher",
    "ReproError",
    "SVC",
    "SVR",
    "ServerApp",
    "ShardedInferenceRouter",
    "SolverError",
    "SparseFormatError",
    "TenantPolicy",
    "Tracer",
    "TrainerConfig",
    "ValidationError",
    "__version__",
    "dump_libsvm",
    "get_backend",
    "list_backends",
    "load_libsvm",
    "load_model",
    "register_backend",
    "save_model",
    "train_cascade",
    "train_multiclass_sharded",
]


def _params(callable_obj):
    return [
        name
        for name in inspect.signature(callable_obj).parameters
        if name != "self"
    ]


class TestSurface:
    def test_all_is_exact(self):
        assert sorted(repro.__all__) == PUBLIC_API
        assert repro.__all__ == sorted(repro.__all__)

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version_is_pep440ish(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))


class TestSignatures:
    def test_gmpsvc_constructor(self):
        names = _params(repro.GMPSVC.__init__)
        # Leading positional-or-keyword parameters, in order.
        assert names[:5] == ["C", "kernel", "gamma", "degree", "coef0"]
        # Paper-system knobs that scripts rely on by keyword.
        for key in (
            "probability",
            "decomposition",
            "working_set_size",
            "share_kernel_values",
            "share_support_vectors",
            "concurrent_svms",
            "coupling_method",
            "backend",
            "device",
        ):
            assert key in names

    def test_gmpsvc_estimator_methods(self):
        for method in (
            "fit",
            "predict",
            "predict_proba",
            "decision_function",
            "score",
            "get_params",
            "set_params",
            "save",
        ):
            assert callable(getattr(repro.GMPSVC, method))

    def test_session_surface(self):
        assert _params(repro.InferenceSession.__init__) == [
            "model",
            "config",
            "tile_cache_entries",
        ]
        for method in ("predict", "predict_proba", "decision_function"):
            assert callable(getattr(repro.InferenceSession, method))
        assert callable(repro.InferenceSession.from_estimator)

    def test_batcher_surface(self):
        assert _params(repro.MicroBatcher.__init__) == [
            "session",
            "max_batch",
            "max_wait_s",
        ]
        assert _params(repro.MicroBatcher.submit) == ["X", "kind", "arrival_s"]
        assert callable(repro.MicroBatcher.drain)

    def test_router_surface(self):
        assert _params(repro.ShardedInferenceRouter.__init__) == [
            "model",
            "cluster",
            "strategy",
            "config",
            "placement",
            "max_batch",
            "max_wait_s",
        ]
        for method in (
            "predict",
            "predict_proba",
            "decision_function",
            "submit",
            "drain",
        ):
            assert callable(getattr(repro.ShardedInferenceRouter, method))

    def test_server_surface(self):
        assert _params(repro.ServerApp.__init__) == [
            "dispatcher",
            "arrival_mode",
            "watcher",
        ]
        for method in ("handle_request", "stats_snapshot", "wsgi"):
            assert callable(getattr(repro.ServerApp, method))
        assert _params(repro.TenantPolicy.__init__) == [
            "rate_per_s",
            "burst",
            "max_queue",
            "max_retry_after_s",
        ]

    def test_registry_surface(self):
        assert _params(repro.ModelRegistry.__init__) == ["root"]
        for method in (
            "publish",
            "load",
            "latest",
            "get",
            "versions",
            "lineage",
        ):
            assert callable(getattr(repro.ModelRegistry, method))
        assert _params(repro.RegistryWatcher.__init__) == [
            "registry",
            "start_version",
            "min_interval_s",
            "clock",
        ]
        assert callable(repro.RegistryWatcher.poll)

    def test_sharded_trainer_signature(self):
        assert _params(repro.train_multiclass_sharded) == [
            "config",
            "cluster",
            "data",
            "y",
            "kernel",
            "penalty",
            "placement",
            "fault_plan",
            "checkpoint_every",
            "checkpoint_dir",
            "cascade",
        ]

    def test_cascade_surface(self):
        assert _params(repro.train_cascade) == [
            "config",
            "cluster",
            "data",
            "y",
            "kernel",
            "penalty",
            "cascade",
            "fault_plan",
            "checkpoint_every",
            "checkpoint_dir",
        ]
        cfg = repro.CascadeConfig()
        assert cfg.n_shards == 4
        assert cfg.threshold == 2048
        with pytest.raises(repro.ValidationError, match="no_such_option"):
            repro.CascadeConfig(no_such_option=1)

    def test_fault_surface(self):
        assert _params(repro.FaultPlan.__init__) == [
            "stragglers",
            "losses",
            "link_faults",
            "seed",
        ]
        assert callable(repro.FaultPlan.random)
        assert _params(repro.FaultInjector.__init__) == ["plan", "n_devices"]
        for method in ("straggler_rate", "loss_time", "check_device"):
            assert callable(getattr(repro.FaultInjector, method))

    def test_persistence_signatures(self):
        assert _params(repro.save_model) == ["model", "target"]
        assert _params(repro.load_model) == ["source", "backend"]

    def test_config_constructors_are_strict(self):
        for cls in (repro.TrainerConfig, repro.PredictorConfig):
            with pytest.raises(repro.ValidationError, match="no_such_option"):
                cls(device=None, no_such_option=1)

    def test_exception_taxonomy(self):
        assert issubclass(repro.ValidationError, ValueError)
        assert issubclass(repro.ModelFormatError, ValueError)
        assert issubclass(repro.NotFittedError, RuntimeError)
        for name in (
            "ValidationError",
            "ModelFormatError",
            "NotFittedError",
            "SolverError",
            "SparseFormatError",
            "DeviceMemoryError",
            "DeviceLostError",
            "CheckpointError",
        ):
            assert issubclass(getattr(repro, name), repro.ReproError)


class TestDeepImportShims:
    """Old deep-import paths resolve to the very same objects."""

    def test_core_aliases(self):
        from repro.core.gmp import GMPSVC
        from repro.core.predictor import PredictorConfig
        from repro.core.trainer import TrainerConfig

        assert GMPSVC is repro.GMPSVC
        assert PredictorConfig is repro.PredictorConfig
        assert TrainerConfig is repro.TrainerConfig

    def test_serving_aliases(self):
        from repro.serving import InferenceSession, MicroBatcher
        from repro.serving.batcher import MicroBatcher as DeepBatcher
        from repro.serving.session import InferenceSession as DeepSession

        assert InferenceSession is repro.InferenceSession is DeepSession
        assert MicroBatcher is repro.MicroBatcher is DeepBatcher

    def test_model_and_sparse_aliases(self):
        from repro.model.persistence import load_model, save_model
        from repro.sparse import CSRMatrix
        from repro.telemetry import Tracer

        assert save_model is repro.save_model
        assert load_model is repro.load_model
        assert CSRMatrix is repro.CSRMatrix
        assert Tracer is repro.Tracer

    def test_distributed_aliases(self):
        from repro.distributed import (
            ClusterSpec,
            ShardedInferenceRouter,
            train_multiclass_sharded,
        )

        assert ClusterSpec is repro.ClusterSpec
        assert ShardedInferenceRouter is repro.ShardedInferenceRouter
        assert train_multiclass_sharded is repro.train_multiclass_sharded

    def test_cascade_aliases(self):
        from repro.cascade import CascadeConfig, train_cascade

        assert CascadeConfig is repro.CascadeConfig
        assert train_cascade is repro.train_cascade

    def test_server_aliases(self):
        from repro.server import ServerApp, TenantPolicy
        from repro.server.admission import TenantPolicy as DeepPolicy
        from repro.server.app import ServerApp as DeepApp

        assert ServerApp is repro.ServerApp is DeepApp
        assert TenantPolicy is repro.TenantPolicy is DeepPolicy

    def test_exception_aliases(self):
        from repro.exceptions import ReproError, ValidationError

        assert ReproError is repro.ReproError
        assert ValidationError is repro.ValidationError


class TestGetSetParams:
    def test_round_trip_trains_identically(self):
        import numpy as np

        from repro.data import gaussian_blobs

        x, y = gaussian_blobs(120, 4, 3, seed=3)
        a = repro.GMPSVC(C=5.0, gamma=0.5, working_set_size=32).fit(x, y)
        b = repro.GMPSVC(**a.get_params()).fit(x, y)
        assert np.array_equal(a.predict_proba(x), b.predict_proba(x))

    def test_set_params_returns_self_and_applies(self):
        est = repro.GMPSVC()
        assert est.set_params(C=7.0, gamma=0.1) is est
        assert est.get_params()["C"] == 7.0
        assert est.get_params()["gamma"] == 0.1

    def test_unknown_key_named_in_error(self):
        with pytest.raises(repro.ValidationError, match="bogus_key"):
            repro.GMPSVC().set_params(bogus_key=1)

    def test_get_params_covers_constructor(self):
        est = repro.GMPSVC()
        assert sorted(est.get_params()) == sorted(_params(repro.GMPSVC.__init__))
