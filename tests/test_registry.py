"""Model registry, watcher polling, and zero-downtime hot swap."""

import json

import numpy as np
import pytest

from repro import GMPSVC
from repro.data import gaussian_blobs
from repro.exceptions import RegistryError, ValidationError
from repro.registry import ModelRegistry, RegistryWatcher
from repro.server import Dispatcher, ServerApp
from repro.server import protocol
from repro.serving import InferenceSession


@pytest.fixture(scope="module")
def models():
    x, y = gaussian_blobs(150, 5, 3, seed=0)
    a = GMPSVC(C=1.0, gamma=0.5, working_set_size=32).fit(x, y).model_
    b = GMPSVC(C=2.0, gamma=0.5, working_set_size=32).fit(x, y).model_
    return a, b, np.asarray(x)


def _post_body(rows):
    return json.dumps(
        {"instances": protocol.encode_matrix(np.asarray(rows))}
    ).encode("utf-8")


class TestRegistryStore:
    def test_publish_assigns_monotonic_versions(self, models, tmp_path):
        a, b, _ = models
        reg = ModelRegistry(tmp_path / "reg")
        assert reg.latest() is None
        v1 = reg.publish(a)
        v2 = reg.publish(b)
        assert (v1.version, v2.version) == (1, 2)
        assert reg.latest().version == 2
        assert [v.version for v in reg.versions()] == [1, 2]

    def test_artifacts_are_content_addressed(self, models, tmp_path):
        a, b, _ = models
        reg = ModelRegistry(tmp_path / "reg")
        v1 = reg.publish(a)
        v2 = reg.publish(b)
        v3 = reg.publish(a)  # same bytes as v1
        assert v1.artifact != v2.artifact
        assert v3.artifact == v1.artifact  # deduplicated
        assert v3.version == 3  # but still a new version
        assert len(list((tmp_path / "reg" / "artifacts").iterdir())) == 2

    def test_load_roundtrips_and_verifies(self, models, tmp_path):
        a, _, x = models
        reg = ModelRegistry(tmp_path / "reg")
        entry = reg.publish(a, metadata={"note": "first"})
        model, loaded = reg.load()
        assert loaded.version == entry.version
        assert loaded.metadata == {"note": "first"}
        sa = InferenceSession(a)
        sb = InferenceSession(model)
        assert np.allclose(
            sa.predict_proba(x[:5]), sb.predict_proba(x[:5]), atol=1e-12
        )

    def test_tampered_artifact_rejected(self, models, tmp_path):
        a, _, _ = models
        reg = ModelRegistry(tmp_path / "reg")
        entry = reg.publish(a)
        path = reg.root / entry.artifact
        path.write_bytes(path.read_bytes() + b"# trailing garbage\n")
        with pytest.raises(RegistryError, match="hash mismatch"):
            reg.load(entry.version)

    def test_missing_artifact_rejected(self, models, tmp_path):
        a, _, _ = models
        reg = ModelRegistry(tmp_path / "reg")
        entry = reg.publish(a)
        (reg.root / entry.artifact).unlink()
        with pytest.raises(RegistryError, match="artifact missing"):
            reg.load(entry.version)

    def test_unknown_version_rejected(self, models, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        with pytest.raises(RegistryError, match="registry is empty"):
            reg.load()
        reg.publish(models[0])
        with pytest.raises(RegistryError, match="version 9"):
            reg.get(9)

    def test_corrupt_manifest_rejected(self, models, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(models[0])
        reg.manifest_path.write_text("{not json", encoding="utf-8")
        with pytest.raises(RegistryError, match="JSON"):
            reg.latest()

    def test_lineage_chain(self, models, tmp_path):
        a, b, _ = models
        reg = ModelRegistry(tmp_path / "reg")
        v1 = reg.publish(a)
        v2 = reg.publish(b, parent=v1.version)
        v3 = reg.publish(a, parent=v2.version)
        assert reg.lineage(v3.version) == [3, 2, 1]
        assert reg.lineage(v1.version) == [1]

    def test_unknown_parent_rejected(self, models, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        with pytest.raises(RegistryError, match="parent"):
            reg.publish(models[0], parent=7)

    def test_reopen_preserves_state(self, models, tmp_path):
        a, _, _ = models
        ModelRegistry(tmp_path / "reg").publish(a)
        reopened = ModelRegistry(tmp_path / "reg")
        assert reopened.latest().version == 1


class TestWatcher:
    def test_delivers_each_version_once(self, models, tmp_path):
        a, b, _ = models
        reg = ModelRegistry(tmp_path / "reg")
        t = [0.0]
        watcher = RegistryWatcher(
            reg, min_interval_s=0.0, clock=lambda: t[0]
        )
        assert watcher.poll() is None  # empty registry
        reg.publish(a)
        got = watcher.poll()
        assert got is not None and got[1].version == 1
        assert watcher.poll() is None  # no new version
        reg.publish(b)
        assert watcher.poll()[1].version == 2

    def test_min_interval_rate_limits(self, models, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(models[0])
        t = [0.0]
        watcher = RegistryWatcher(
            reg, min_interval_s=5.0, clock=lambda: t[0]
        )
        assert watcher.poll() is not None
        t[0] += 4.9
        assert watcher.poll() is None
        assert watcher.n_polls == 1  # second call never reached the stat

    def test_start_version_skips_already_served(self, models, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        entry = reg.publish(models[0])
        watcher = RegistryWatcher(
            reg, start_version=entry.version, min_interval_s=0.0
        )
        assert watcher.poll() is None

    def test_mtime_fast_path_skips_manifest_reads(self, models, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(models[0])
        watcher = RegistryWatcher(reg, min_interval_s=0.0)
        watcher.poll()
        for _ in range(5):
            watcher.poll()
        assert watcher.n_manifest_reads == 1

    def test_manifest_deleted_mid_watch_is_clean_error_then_recovers(
        self, models, tmp_path
    ):
        """Regression: a vanished manifest surfaces as RegistryError (the
        caller keeps serving the old model) and a restored manifest
        delivers the pending version on the next poll — never a silent
        skip, never a raw FileNotFoundError."""
        a, b, _ = models
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(a)
        watcher = RegistryWatcher(reg, min_interval_s=0.0)
        assert watcher.poll()[1].version == 1

        reg.publish(b)
        saved = reg.manifest_path.read_bytes()
        reg.manifest_path.unlink()
        with pytest.raises(RegistryError, match="manifest"):
            watcher.poll()
        assert watcher.last_version == 1  # old model stays current

        reg.manifest_path.write_bytes(saved)
        got = watcher.poll()
        assert got is not None and got[1].version == 2

    def test_transient_read_failure_retries_on_next_poll(
        self, models, tmp_path, monkeypatch
    ):
        """Regression: the manifest mtime is committed only after a
        successful read, so a poll that fails mid-read does not swallow
        the version it was about to deliver."""
        a, b, _ = models
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(a)
        watcher = RegistryWatcher(reg, min_interval_s=0.0)
        assert watcher.poll()[1].version == 1

        reg.publish(b)
        real_latest = reg.latest

        def vanishing_latest():
            monkeypatch.setattr(reg, "latest", real_latest)
            raise RegistryError("manifest vanished mid-read")

        monkeypatch.setattr(reg, "latest", vanishing_latest)
        with pytest.raises(RegistryError, match="mid-read"):
            watcher.poll()
        assert watcher.last_version == 1
        # The failed poll did not advance the mtime watermark: the next
        # poll re-reads and delivers version 2 instead of skipping it.
        got = watcher.poll()
        assert got is not None and got[1].version == 2


class TestHotSwap:
    def _request_stream(self, n=40, seed=3):
        rng = np.random.default_rng(seed)
        rows = [rng.normal(size=(int(rng.integers(1, 4)), 5)) for _ in range(n)]
        arrivals = np.cumsum(rng.uniform(0.001, 0.01, size=n))
        return rows, arrivals

    def test_swap_is_bitwise_equal_to_cold_restart(self, models):
        """Acceptance: hot-swap under live traffic serves exactly what a
        cold restart of the right model would, with zero failed requests."""
        a, b, _ = models
        rows, arrivals = self._request_stream()
        swap_at = arrivals[19]

        dispatcher = Dispatcher(InferenceSession(a), n_workers=2, max_batch=8)
        handles, swapped = [], False
        for data, t in zip(rows, arrivals):
            if not swapped and t > swap_at:
                dispatcher.swap_model(InferenceSession(b), label="v2")
                swapped = True
            handles.append(
                dispatcher.submit(data, arrival_s=max(t, dispatcher.now_s))
            )
        dispatcher.drain()

        assert all(h.done and not h.shed for h in handles)  # zero failed
        swap_s = dispatcher.swaps[0].requested_s
        for handle, data in zip(handles, rows):
            served_by = a if handle.arrival_s <= swap_s else b
            cold = InferenceSession(served_by).predict_proba(np.asarray(data))
            assert np.array_equal(handle.result, cold)

    def test_swap_drains_queued_requests_on_old_model(self, models):
        a, b, _ = models
        rng = np.random.default_rng(7)
        dispatcher = Dispatcher(InferenceSession(a), n_workers=1, max_batch=1)
        # Pile up a queue: all requests arrive at t=0 on one worker.
        handles = [
            dispatcher.submit(rng.normal(size=(1, 5)), arrival_s=0.0)
            for _ in range(6)
        ]
        assert dispatcher.n_queued > 0
        report = dispatcher.swap_model(InferenceSession(b), label="v2")
        assert report.drained_requests > 0
        assert report.window_s > 0
        cold_a = InferenceSession(a)
        for handle in handles:
            assert handle.done and not handle.shed
            expected = cold_a.predict_proba(np.asarray(handle.data))
            assert np.array_equal(handle.result, expected)

    def test_swap_validates_feature_count(self, models):
        a, _, _ = models
        x, y = gaussian_blobs(80, 4, 3, seed=1)
        other = GMPSVC(C=1.0, gamma=0.5, working_set_size=32).fit(x, y).model_
        dispatcher = Dispatcher(InferenceSession(a), n_workers=1)
        with pytest.raises(ValidationError, match="features"):
            dispatcher.swap_model(InferenceSession(other))

    def test_swap_requires_sealed_session(self, models):
        a, b, _ = models
        dispatcher = Dispatcher(InferenceSession(a), n_workers=1)
        with pytest.raises(ValidationError, match="InferenceSession"):
            dispatcher.swap_model(b)  # bare model, not a session


class TestServerIntegration:
    def test_watcher_driven_swap_through_http(self, models, tmp_path):
        a, b, x = models
        reg = ModelRegistry(tmp_path / "reg")
        v1 = reg.publish(a)
        watcher = RegistryWatcher(
            reg, start_version=v1.version, min_interval_s=0.0
        )
        app = ServerApp(
            Dispatcher(InferenceSession(a), n_workers=2), watcher=watcher
        )
        body = _post_body(x[:2])

        status1, _, body1 = app.handle_request(
            "POST", "/v1/predict_proba", body
        )
        v2 = reg.publish(b, parent=v1.version)
        status2, _, body2 = app.handle_request(
            "POST", "/v1/predict_proba", body
        )
        assert status1 == status2 == 200
        assert app.n_swaps == 1 and app.n_swap_errors == 0
        result1 = protocol.decode_array(json.loads(body1)["result"])
        result2 = protocol.decode_array(json.loads(body2)["result"])
        assert np.array_equal(
            result1, InferenceSession(a).predict_proba(x[:2])
        )
        # The cold-restart comparator loads from the registry too — that
        # is exactly what a restarted server would serve.
        cold_model, _ = reg.load(v2.version)
        assert np.array_equal(
            result2, InferenceSession(cold_model).predict_proba(x[:2])
        )

    def test_corrupt_registry_keeps_serving_old_model(
        self, models, tmp_path
    ):
        a, b, x = models
        reg = ModelRegistry(tmp_path / "reg")
        v1 = reg.publish(a)
        watcher = RegistryWatcher(
            reg, start_version=v1.version, min_interval_s=0.0
        )
        app = ServerApp(
            Dispatcher(InferenceSession(a), n_workers=2), watcher=watcher
        )
        entry = reg.publish(b)
        (reg.root / entry.artifact).write_bytes(b"garbage")
        status, _, body = app.handle_request(
            "POST", "/v1/predict_proba", _post_body(x[:2])
        )
        assert status == 200  # request still served
        assert app.n_swaps == 0 and app.n_swap_errors == 1
        result = protocol.decode_array(json.loads(body)["result"])
        assert np.array_equal(
            result, InferenceSession(a).predict_proba(x[:2])
        )

    def test_stats_snapshot_reports_swaps(self, models, tmp_path):
        a, b, _ = models
        reg = ModelRegistry(tmp_path / "reg")
        v1 = reg.publish(a)
        watcher = RegistryWatcher(
            reg, start_version=v1.version, min_interval_s=0.0
        )
        app = ServerApp(
            Dispatcher(InferenceSession(a), n_workers=1), watcher=watcher
        )
        reg.publish(b)
        app.handle_request("GET", "/healthz")
        snapshot = app.stats_snapshot()
        assert snapshot["n_swaps"] == 1
        assert snapshot["n_swap_errors"] == 0
