"""The HTTP serving front-end: protocol, admission, dispatch, parity.

The headline contract is DESIGN.md §13's: an HTTP response body decodes
to arrays *bitwise equal* to direct :class:`InferenceSession` calls —
the wire format ships raw float64 buffers, the dispatcher fuses batches
through the same fixed-tile kernels, so transport and batching add
nothing numerically.  Around that: the admission-control edge cases
(zero-capacity tenants, no priority inversion under shed, queue drain on
shutdown, deterministic shed decisions) and a real-socket round trip.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro import GMPSVC, PredictorConfig, ValidationError
from repro.data import gaussian_blobs
from repro.distributed import ClusterSpec, ShardedInferenceRouter
from repro.gpusim import scaled_tesla_p100
from repro.serving import InferenceSession
from repro.server import (
    AdmissionController,
    Dispatcher,
    ProtocolError,
    ServerApp,
    TenantPolicy,
    TokenBucket,
    serve_http,
)
from repro.server import protocol
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def problem():
    x, y = gaussian_blobs(180, 6, 3, seed=21)
    return x, y


@pytest.fixture(scope="module")
def model(problem):
    x, y = problem
    return GMPSVC(C=10.0, gamma=0.4, working_set_size=32).fit(x, y).model_


def make_session(model):
    return InferenceSession(
        model, PredictorConfig(device=scaled_tesla_p100())
    )


def make_dispatcher(model, **kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("max_batch", 8)
    return Dispatcher(make_session(model), **kwargs)


def post_body(x, **extra):
    payload = {"instances": protocol.encode_matrix(np.asarray(x))}
    payload.update(extra)
    return json.dumps(payload).encode("utf-8")


class TestProtocol:
    def test_array_round_trip_is_bitwise(self, rng):
        array = rng.standard_normal((5, 7))
        decoded = protocol.decode_array(protocol.encode_array(array))
        assert decoded.dtype == array.dtype
        assert decoded.tobytes() == array.tobytes()

    def test_dense_matrix_round_trip(self, rng):
        array = rng.standard_normal((4, 3))
        decoded = protocol.decode_matrix(protocol.encode_matrix(array))
        assert np.array_equal(decoded, array)

    def test_csr_matrix_round_trip(self, rng):
        dense = rng.standard_normal((6, 5))
        dense[dense < 0.3] = 0.0
        csr = CSRMatrix.from_dense(dense)
        decoded = protocol.decode_matrix(protocol.encode_matrix(csr))
        assert isinstance(decoded, CSRMatrix)
        assert np.array_equal(decoded.toarray(), dense)

    def test_rows_spelling(self):
        decoded = protocol.decode_matrix({"rows": [[1.0, 2.0], [3.0, 4.0]]})
        assert decoded.shape == (2, 2)
        single = protocol.decode_matrix({"rows": [1.0, 2.0]})
        assert single.shape == (1, 2)

    @pytest.mark.parametrize(
        "payload",
        [
            {"rows": []},
            {"rows": [["a", "b"]]},
            {"dense_b64": "!!!", "dtype": "float64", "shape": [1, 1]},
            {"dense_b64": "AAAA", "dtype": "float16", "shape": [1, 1]},
            {"csr": {"shape": [2]}},
            {"nope": 1},
            [],
        ],
    )
    def test_malformed_matrix_raises_protocol_error(self, payload):
        with pytest.raises(ProtocolError):
            protocol.decode_matrix(payload)

    def test_buffer_shape_mismatch_named(self):
        bad = protocol.encode_array(np.zeros((2, 2)))
        bad["shape"] = [3, 3]
        with pytest.raises(ProtocolError, match="bytes"):
            protocol.decode_array(bad)

    def test_csr_payload_must_be_canonical(self):
        # indptr not ending at nnz -> CSRMatrix validation -> ProtocolError.
        csr = protocol.encode_matrix(
            CSRMatrix.from_dense(np.eye(3))
        )["csr"]
        csr["shape"] = [2, 3]
        with pytest.raises(ProtocolError):
            protocol.decode_matrix({"csr": csr})

    def test_decode_request_priority_validation(self):
        body = json.dumps(
            {"instances": {"rows": [[1.0]]}, "priority": True}
        ).encode()
        with pytest.raises(ProtocolError, match="priority"):
            protocol.decode_request(body)

    def test_decode_request_needs_instances(self):
        with pytest.raises(ProtocolError, match="instances"):
            protocol.decode_request(b"{}")
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.decode_request(b"not json")


class TestAdmissionPrimitives:
    def test_token_bucket_refills_on_virtual_time(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=1, now_s=0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.seconds_until_token(0.0) == pytest.approx(0.5)
        assert bucket.try_take(0.5)

    def test_zero_rate_bucket_never_refills(self):
        bucket = TokenBucket(rate_per_s=0.0, burst=0, now_s=0.0)
        assert not bucket.try_take(0.0)
        assert bucket.seconds_until_token(1e9) == float("inf")

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            TenantPolicy(rate_per_s=-1.0)
        with pytest.raises(ValidationError):
            TenantPolicy(burst=-1)

    def test_controller_rate_limit_verdict(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(rate_per_s=1.0, burst=1, max_queue=4)
        )
        assert controller.offer("t", 0.0).admitted
        verdict = controller.offer("t", 0.0)
        assert not verdict.admitted
        assert verdict.status == 429
        assert verdict.reason == "rate_limited"
        assert verdict.retry_after_s == pytest.approx(1.0)


class TestDispatchAndParity:
    def test_http_response_bitwise_equals_direct_session(self, problem, model):
        x, _ = problem
        batch = x[:6]
        direct = make_session(model).predict_proba(batch)

        app = ServerApp(make_dispatcher(model))
        status, headers, body = app.handle_request(
            "POST", "/v1/predict_proba", post_body(batch)
        )
        assert status == 200
        payload = json.loads(body)
        result = protocol.decode_array(payload["result"])
        assert result.tobytes() == direct.tobytes()

    def test_parity_holds_for_all_kinds(self, problem, model):
        x, _ = problem
        batch = x[:5]
        session = make_session(model)
        direct = {
            "predict_proba": session.predict_proba(batch),
            "predict": session.predict(batch),
            "decision_function": session.decision_function(batch),
        }
        app = ServerApp(make_dispatcher(model))
        for kind, expected in direct.items():
            status, _, body = app.handle_request(
                "POST", f"/v1/{kind}", post_body(batch)
            )
            assert status == 200
            result = protocol.decode_array(json.loads(body)["result"])
            assert np.array_equal(result, expected), kind

    def test_parity_survives_batched_contention(self, problem, model):
        # Many single-row requests at one instant fuse into wide batches;
        # fixed-tile kernels keep per-row results byte-identical to the
        # unfused direct call.
        x, _ = problem
        direct = make_session(model).predict_proba(x[:12])
        dispatcher = make_dispatcher(model, max_batch=6)
        tickets = [
            dispatcher.submit(x[i : i + 1], arrival_s=0.0) for i in range(12)
        ]
        dispatcher.drain()
        assert max(t.batch_requests for t in tickets) > 1
        served = np.vstack([t.result for t in tickets])
        assert served.tobytes() == direct.tobytes()

    def test_csr_requests_share_the_sparse_path(self, problem, model):
        x, _ = problem
        csr = CSRMatrix.from_dense(x[:4])
        direct = make_session(model).predict_proba(csr)
        app = ServerApp(make_dispatcher(model))
        body = json.dumps(
            {"instances": protocol.encode_matrix(csr)}
        ).encode()
        status, _, payload = app.handle_request(
            "POST", "/v1/predict_proba", body
        )
        assert status == 200
        result = protocol.decode_array(json.loads(payload)["result"])
        assert result.tobytes() == direct.tobytes()

    def test_router_backend_replicated(self, problem, model):
        x, _ = problem
        router = ShardedInferenceRouter(
            model,
            ClusterSpec(device=scaled_tesla_p100(), n_devices=2),
            strategy="replicated",
        )
        direct = make_session(model).predict_proba(x[:4])
        dispatcher = Dispatcher(router, max_batch=4)
        assert dispatcher.n_workers == 2
        ticket = dispatcher.submit(x[:4])
        dispatcher.drain()
        assert ticket.result.tobytes() == direct.tobytes()

    def test_wrong_width_is_422_not_500(self, model):
        app = ServerApp(make_dispatcher(model))
        status, _, body = app.handle_request(
            "POST", "/v1/predict_proba", post_body(np.zeros((1, 3)))
        )
        assert status == 422
        assert json.loads(body)["error"]["status"] == 422

    def test_malformed_body_is_400(self, model):
        app = ServerApp(make_dispatcher(model))
        status, _, body = app.handle_request(
            "POST", "/v1/predict_proba", b"not json"
        )
        assert status == 400
        assert json.loads(body)["error"]["reason"] == "bad_request"

    def test_routes_and_stats(self, problem, model):
        x, _ = problem
        app = ServerApp(make_dispatcher(model))
        assert app.handle_request("GET", "/healthz")[0] == 200
        assert app.handle_request("GET", "/nope")[0] == 404
        assert app.handle_request("PUT", "/healthz")[0] == 405
        app.handle_request("POST", "/v1/predict", post_body(x[:2]))
        status, _, body = app.handle_request("GET", "/v1/stats")
        snapshot = json.loads(body)
        assert status == 200
        assert snapshot["admitted"] == 1
        assert "default" in snapshot["tenants"]

    def test_out_of_order_arrival_rejected(self, problem, model):
        x, _ = problem
        dispatcher = make_dispatcher(model)
        dispatcher.submit(x[:1], arrival_s=5.0)
        with pytest.raises(ValidationError, match="time order"):
            dispatcher.submit(x[:1], arrival_s=1.0)


class TestSwapFailurePaths:
    """A rejected swap must be a no-op: the old session keeps serving,
    nothing queued is dropped, and no swap is recorded."""

    @pytest.fixture(scope="class")
    def narrow_model(self):
        x, y = gaussian_blobs(80, 4, 3, seed=11)
        return GMPSVC(C=1.0, gamma=0.5, working_set_size=32).fit(x, y).model_

    def test_width_mismatch_leaves_old_session_serving(
        self, problem, model, narrow_model
    ):
        x, _ = problem
        dispatcher = make_dispatcher(model)
        reference = make_session(model).predict_proba(np.asarray(x[:2]))

        before = [
            dispatcher.submit(x[:2], arrival_s=float(i)) for i in range(3)
        ]
        with pytest.raises(ValidationError, match="features"):
            dispatcher.swap_model(make_session(narrow_model), label="bad")
        # Queued traffic was not drained, shed, or rerouted by the
        # failed attempt; later arrivals serve on the old model too.
        after = [
            dispatcher.submit(x[:2], arrival_s=dispatcher.now_s + 1.0 + i)
            for i in range(3)
        ]
        dispatcher.drain()
        for handle in before + after:
            assert handle.status == 200 and not handle.shed
            assert np.array_equal(handle.result, reference)
        assert dispatcher.swaps == []
        assert dispatcher.stats.n_shed == 0

    def test_unsealed_backend_rejected_without_drop(self, problem, model):
        x, _ = problem
        dispatcher = make_dispatcher(model)
        queued = dispatcher.submit(x[:1], arrival_s=1.0)
        with pytest.raises(ValidationError, match="InferenceSession"):
            dispatcher.swap_model(model)  # bare model, not a session
        dispatcher.drain()
        assert queued.status == 200 and not queued.shed
        assert dispatcher.swaps == []

    def test_failed_then_valid_swap_succeeds(
        self, problem, model, narrow_model
    ):
        x, _ = problem
        dispatcher = make_dispatcher(model)
        with pytest.raises(ValidationError, match="features"):
            dispatcher.swap_model(make_session(narrow_model))
        report = dispatcher.swap_model(make_session(model), label="v2")
        assert report.label == "v2"
        handle = dispatcher.submit(x[:2], arrival_s=dispatcher.now_s + 1.0)
        dispatcher.drain()
        assert handle.status == 200
        assert len(dispatcher.swaps) == 1


class TestAdmissionEdgeCases:
    def test_zero_capacity_tenant_always_429(self, problem, model):
        x, _ = problem
        admission = AdmissionController(
            default_policy=TenantPolicy(rate_per_s=1e6, burst=8, max_queue=8),
            policies={
                "blocked": TenantPolicy(rate_per_s=0.0, burst=0, max_queue=8)
            },
        )
        dispatcher = make_dispatcher(model, admission=admission)
        for i in range(3):
            ticket = dispatcher.submit(
                x[:1], tenant="blocked", arrival_s=float(i)
            )
            assert ticket.shed and ticket.status == 429
            assert ticket.decision.reason == "rate_limited"
        # Retry-After is capped, not infinite, even with rate 0.
        assert ticket.decision.retry_after_s <= 60.0
        ok = dispatcher.submit(x[:1], tenant="open", arrival_s=3.0)
        assert not ok.shed
        counters = admission.counters_snapshot()
        assert counters["blocked"]["shed_rate_limited"] == 3
        assert counters["blocked"]["admitted"] == 0

    def test_no_priority_inversion_under_shed(self, problem, model):
        # Queue full of priority-0 work; a priority-2 arrival evicts the
        # *youngest lowest-priority* request, never a peer or higher.
        x, _ = problem
        admission = AdmissionController(
            default_policy=TenantPolicy(
                rate_per_s=1e12, burst=1000, max_queue=1000
            ),
            max_queue_global=3,
        )
        dispatcher = make_dispatcher(model, n_workers=1, admission=admission)
        # Busy the lane so subsequent arrivals queue.
        dispatcher.submit(x[:1], arrival_s=0.0)
        low = [
            dispatcher.submit(x[:1], priority=0, arrival_s=0.0)
            for _ in range(3)
        ]
        high = dispatcher.submit(x[:1], priority=2, arrival_s=0.0)
        assert not high.shed
        assert low[-1].shed and low[-1].status == 503
        assert low[-1].decision.reason == "evicted"
        assert not low[0].shed and not low[1].shed
        # A same-priority arrival cannot evict: it is shed instead.
        same = dispatcher.submit(x[:1], priority=0, arrival_s=0.0)
        assert same.shed and same.decision.reason == "overloaded"
        # And the high-priority request completes before surviving lows.
        dispatcher.drain()
        assert high.completion_s <= min(
            r.completion_s for r in low if not r.shed
        )

    def test_queue_drains_on_graceful_shutdown(self, problem, model):
        x, _ = problem
        dispatcher = make_dispatcher(model, n_workers=1)
        dispatcher.submit(x[:1], arrival_s=0.0)
        tickets = [
            dispatcher.submit(x[:1], arrival_s=0.0) for _ in range(5)
        ]
        assert dispatcher.n_queued > 0
        dispatcher.shutdown(drain=True)
        assert dispatcher.n_queued == 0
        assert all(t.done and not t.shed for t in tickets)
        late = dispatcher.submit(x[:1], arrival_s=dispatcher.now_s)
        assert late.shed and late.status == 503
        assert late.decision.reason == "shutting_down"

    def test_hard_shutdown_sheds_backlog_explicitly(self, problem, model):
        x, _ = problem
        dispatcher = make_dispatcher(model, n_workers=1)
        dispatcher.submit(x[:1], arrival_s=0.0)
        tickets = [
            dispatcher.submit(x[:1], arrival_s=0.0) for _ in range(4)
        ]
        queued = [t for t in tickets if not t.done]
        assert queued
        dispatcher.shutdown(drain=False)
        assert dispatcher.n_queued == 0
        for ticket in queued:
            assert ticket.shed and ticket.status == 503
            assert ticket.decision.reason == "shutting_down"

    def test_shed_decisions_deterministic_under_fixed_seed(self, problem, model):
        from benchmarks.loadgen import TrafficShape, run_open_loop

        x, _ = problem
        rows = [x[i : i + 1] for i in range(16)]
        shape = TrafficShape(kind="steady", rate_rps=5e7, duration_s=4e-6)

        def run():
            admission = AdmissionController(
                default_policy=TenantPolicy(
                    rate_per_s=2e7, burst=8, max_queue=4
                ),
                max_queue_global=6,
            )
            dispatcher = make_dispatcher(model, admission=admission)
            return run_open_loop(
                dispatcher,
                rows,
                shape,
                tenants=(("a", 0.6), ("b", 0.4)),
                priorities=((0, 0.8), (1, 0.2)),
                seed=17,
            )

        first, second = run(), run()
        assert first.n_shed > 0
        assert first.decision_log == second.decision_log
        assert first.accepted_latencies_s == second.accepted_latencies_s
        assert first.shed_statuses == second.shed_statuses

    def test_shed_429_carries_retry_after_header(self, problem, model):
        x, _ = problem
        admission = AdmissionController(
            default_policy=TenantPolicy(rate_per_s=1.0, burst=1, max_queue=4)
        )
        app = ServerApp(make_dispatcher(model, admission=admission))
        assert app.handle_request(
            "POST", "/v1/predict", post_body(x[:1])
        )[0] == 200
        status, headers, body = app.handle_request(
            "POST", "/v1/predict", post_body(x[:1])
        )
        assert status == 429
        # RFC 9110: the header is integer delta-seconds, >= 1 and never
        # earlier than the exact float advertised in the body.
        assert headers["Retry-After"].isdigit()
        assert int(headers["Retry-After"]) >= 1
        error = json.loads(body)["error"]
        assert error["reason"] == "rate_limited"
        assert error["retry_after_s"] > 0
        assert int(headers["Retry-After"]) >= error["retry_after_s"]


class TestLoadGenerator:
    def test_traffic_shapes_preserve_mean_rate(self):
        from benchmarks.loadgen import TrafficShape, open_loop_arrivals

        for kind in ("steady", "bursty", "diurnal"):
            shape = TrafficShape(kind=kind, rate_rps=2000.0, duration_s=2.0)
            arrivals = open_loop_arrivals(shape, seed=3)
            assert arrivals.size == pytest.approx(4000, rel=0.15)
            assert np.all(np.diff(arrivals) >= 0)
            assert arrivals[-1] < 2.0

    def test_arrivals_deterministic_per_seed(self):
        from benchmarks.loadgen import TrafficShape, open_loop_arrivals

        shape = TrafficShape(kind="bursty", rate_rps=500.0, duration_s=1.0)
        a = open_loop_arrivals(shape, seed=9)
        b = open_loop_arrivals(shape, seed=9)
        c = open_loop_arrivals(shape, seed=10)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_closed_loop_self_limits(self, problem, model):
        from benchmarks.loadgen import run_closed_loop

        x, _ = problem
        rows = [x[i : i + 1] for i in range(8)]
        report = run_closed_loop(
            make_dispatcher(model), rows, n_clients=4, n_requests=32
        )
        assert report.n_offered == 32
        assert report.n_shed == 0
        assert report.accepted_throughput_rps > 0


class TestSocketServer:
    def test_real_socket_round_trip(self, problem, model):
        x, _ = problem
        direct = make_session(model).predict_proba(x[:3])
        app = ServerApp(make_dispatcher(model))
        ready = threading.Event()
        bound = {}

        def on_ready(host, port):
            bound["base"] = f"http://{host}:{port}"
            ready.set()

        thread = threading.Thread(
            target=serve_http,
            args=(app, "127.0.0.1", 0),
            kwargs={"max_requests": 2, "ready_callback": on_ready},
            daemon=True,
        )
        thread.start()
        assert ready.wait(10)
        with urllib.request.urlopen(f"{bound['base']}/healthz") as response:
            assert response.status == 200
        request = urllib.request.Request(
            f"{bound['base']}/v1/predict_proba",
            data=post_body(x[:3]),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            payload = json.loads(response.read())
        thread.join(10)
        assert not thread.is_alive()
        result = protocol.decode_array(payload["result"])
        assert result.tobytes() == direct.tobytes()
