"""Serving-layer tests: sealed sessions, micro-batching, bitwise parity.

The acceptance bar for the serving layer is *bitwise* parity: every row a
session (or a micro-batched dispatch) returns must be bit-for-bit what the
one-shot ``predict_*_model`` functions produce for the same input — across
class counts, dense and sparse inputs, and arbitrary request fusion.
"""

import numpy as np
import pytest

from repro import GMPSVC, InferenceSession, MicroBatcher
from repro.core.predictor import (
    PredictorConfig,
    decision_matrix,
    predict_labels_model,
    predict_proba_model,
)
from repro.data import gaussian_blobs
from repro.exceptions import NotFittedError, ValidationError
from repro.gpusim import scaled_tesla_p100
from repro.serving.batcher import ServedRequest
from repro.sparse import CSRMatrix


def _fit(k, n=140, seed=None):
    x, y = gaussian_blobs(n, 5, k, seed=7 * k if seed is None else seed)
    clf = GMPSVC(C=10.0, gamma=0.4, working_set_size=32).fit(x, y)
    return clf, x, y


@pytest.fixture(scope="module")
def fitted3():
    return _fit(3)


@pytest.fixture(scope="module")
def session3(fitted3):
    return InferenceSession.from_estimator(fitted3[0])


def _one_shot_proba(model, data):
    config = PredictorConfig(device=scaled_tesla_p100())
    probabilities, _ = predict_proba_model(config, model, data)
    return probabilities


class TestSessionParity:
    @pytest.mark.parametrize("k", [2, 3, 10])
    def test_proba_bitwise_dense(self, k):
        clf, x, _ = _fit(k, n=60 * k if k > 3 else 140)
        session = InferenceSession.from_estimator(clf)
        expected = _one_shot_proba(clf.model_, x)
        assert np.array_equal(session.predict_proba(x), expected)

    @pytest.mark.parametrize("k", [2, 3, 10])
    def test_proba_bitwise_sparse(self, k):
        clf, x, _ = _fit(k, n=60 * k if k > 3 else 140)
        session = InferenceSession.from_estimator(clf)
        sparse = CSRMatrix.from_dense(x)
        expected = _one_shot_proba(clf.model_, sparse)
        assert np.array_equal(session.predict_proba(sparse), expected)

    def test_labels_bitwise(self, fitted3, session3):
        clf, x, _ = fitted3
        config = PredictorConfig(device=scaled_tesla_p100())
        expected, _ = predict_labels_model(config, clf.model_, x)
        assert np.array_equal(session3.predict(x), expected)

    def test_decision_function_bitwise(self, fitted3, session3):
        clf, x, _ = fitted3
        engine = PredictorConfig(device=scaled_tesla_p100()).make_engine()
        expected = decision_matrix(engine, clf.model_, x)
        assert np.array_equal(session3.decision_function(x), expected)

    def test_single_row_matches_full_batch_rows(self, fitted3, session3):
        """Row i served alone is bitwise row i of the full-batch result."""
        _, x, _ = fitted3
        full = session3.predict_proba(x[:16])
        for i in (0, 7, 15):
            assert np.array_equal(
                session3.predict_proba(x[i : i + 1])[0], full[i]
            )

    def test_repeated_calls_identical(self, fitted3, session3):
        _, x, _ = fitted3
        first = session3.predict_proba(x[:20])
        second = session3.predict_proba(x[:20])
        assert np.array_equal(first, second)

    def test_nonprobabilistic_labels(self):
        x, y = gaussian_blobs(120, 5, 3, seed=5)
        clf = GMPSVC(C=10.0, gamma=0.4, probability=False).fit(x, y)
        session = InferenceSession.from_estimator(clf)
        assert np.array_equal(session.predict(x), clf.predict(x))
        with pytest.raises(NotFittedError):
            session.predict_proba(x)


class TestSessionLifecycle:
    def test_requires_fitted_model(self):
        with pytest.raises(NotFittedError):
            InferenceSession("not a model")
        with pytest.raises(NotFittedError):
            InferenceSession.from_estimator(GMPSVC())

    def test_negative_tile_cache_rejected(self, fitted3):
        with pytest.raises(ValidationError):
            InferenceSession(fitted3[0].model_, tile_cache_entries=-1)

    def test_seal_paid_once(self, fitted3):
        clf, x, _ = fitted3
        session = InferenceSession.from_estimator(clf)
        sealed = session.stats.seal_simulated_s
        assert sealed > 0
        session.predict_proba(x[:8])
        session.predict_proba(x[:8])
        assert session.stats.seal_simulated_s == sealed
        assert session.stats.n_calls == 2
        assert session.stats.n_rows == 16

    def test_simulated_clock_accumulates(self, fitted3):
        clf, x, _ = fitted3
        session = InferenceSession.from_estimator(clf)
        t0 = session.simulated_seconds
        session.predict_proba(x[:8])
        t1 = session.simulated_seconds
        session.predict_proba(x[:8])
        assert t0 > 0 and t1 > t0 and session.simulated_seconds > t1

    def test_warm_cheaper_than_cold_per_call(self, fitted3):
        """A warm serve call charges less than the cold one-shot path."""
        clf, x, _ = fitted3
        session = InferenceSession.from_estimator(clf)
        row = x[:1]
        session.predict_proba(row)  # exercise once
        session.predict_proba(row)
        warm = session.stats.per_call_simulated_s[-1]
        config = PredictorConfig(device=scaled_tesla_p100())
        _, report = predict_proba_model(config, clf.model_, row)
        assert warm < report.simulated_seconds


class TestTileCache:
    def test_repeat_requests_hit_and_stay_bitwise(self, fitted3):
        clf, x, _ = fitted3
        session = InferenceSession.from_estimator(clf, tile_cache_entries=4)
        expected = _one_shot_proba(clf.model_, x[:6])
        first = session.predict_proba(x[:6])
        t_miss = session.stats.per_call_simulated_s[-1]
        second = session.predict_proba(x[:6])
        t_hit = session.stats.per_call_simulated_s[-1]
        assert np.array_equal(first, expected)
        assert np.array_equal(second, expected)
        assert session.stats.tile_hits == 1
        assert session.stats.tile_misses == 1
        assert session.stats.tile_hit_rate == 0.5
        assert t_hit < t_miss  # the kernel block was not recomputed

    def test_lru_eviction(self, fitted3):
        clf, x, _ = fitted3
        session = InferenceSession.from_estimator(clf, tile_cache_entries=1)
        session.predict_proba(x[:4])
        session.predict_proba(x[4:8])  # evicts the first tile
        session.predict_proba(x[:4])  # miss again
        assert session.stats.tile_hits == 0
        assert session.stats.tile_misses == 3

    def test_distinct_requests_never_collide(self, fitted3):
        clf, x, _ = fitted3
        session = InferenceSession.from_estimator(clf, tile_cache_entries=8)
        a = session.predict_proba(x[:4])
        b = session.predict_proba(x[4:8])
        assert np.array_equal(a, _one_shot_proba(clf.model_, x[:4]))
        assert np.array_equal(b, _one_shot_proba(clf.model_, x[4:8]))


class TestMicroBatcher:
    def test_mixed_size_fused_dispatch_bitwise(self, fitted3):
        """Fused mixed-size requests return bitwise one-shot rows."""
        clf, x, _ = fitted3
        session = InferenceSession.from_estimator(clf)
        batcher = MicroBatcher(session, max_batch=8)
        sizes = [1, 3, 2, 1, 4, 1]
        requests, start = [], 0
        for size in sizes:
            requests.append(batcher.submit(x[start : start + size]))
            start += size
        drained = batcher.drain()
        assert [r.index for r in drained] == list(range(len(sizes)))
        start = 0
        for request, size in zip(requests, sizes):
            expected = _one_shot_proba(clf.model_, x[start : start + size])
            assert np.array_equal(request.result, expected)
            start += size
        assert batcher.stats.n_batches == 1
        assert batcher.stats.n_requests == len(sizes)

    def test_sparse_requests_bitwise(self, fitted3):
        clf, x, _ = fitted3
        session = InferenceSession.from_estimator(clf)
        batcher = MicroBatcher(session, max_batch=4)
        sparse = CSRMatrix.from_dense(x[:6])
        handles = [
            batcher.submit(CSRMatrix.from_dense(x[i : i + 2]))
            for i in range(0, 6, 2)
        ]
        batcher.drain()
        expected = _one_shot_proba(clf.model_, sparse)
        fused = np.vstack([h.result for h in handles])
        assert np.array_equal(fused, expected)

    def test_max_batch_splits_dispatches(self, fitted3):
        clf, x, _ = fitted3
        batcher = MicroBatcher(
            InferenceSession.from_estimator(clf), max_batch=2
        )
        for i in range(5):
            batcher.submit(x[i : i + 1])
        batcher.drain()
        assert batcher.stats.n_batches == 3  # 2 + 2 + 1

    def test_window_close_splits_late_arrivals(self, fitted3):
        clf, x, _ = fitted3
        batcher = MicroBatcher(
            InferenceSession.from_estimator(clf), max_batch=8, max_wait_s=1.0
        )
        batcher.submit(x[:1], arrival_s=0.0)
        batcher.submit(x[1:2], arrival_s=0.5)  # inside the window
        batcher.submit(x[2:3], arrival_s=5.0)  # outside -> second batch
        batcher.drain()
        assert batcher.stats.n_batches == 2

    def test_kind_change_closes_batch(self, fitted3):
        clf, x, _ = fitted3
        batcher = MicroBatcher(InferenceSession.from_estimator(clf), max_batch=8)
        batcher.submit(x[:1], kind="predict_proba")
        batcher.submit(x[1:2], kind="decision_function")
        batcher.submit(x[2:3], kind="predict_proba")
        batcher.drain()
        assert batcher.stats.n_batches == 3  # FIFO: no reordering around kinds

    def test_representation_change_closes_batch(self, fitted3):
        clf, x, _ = fitted3
        batcher = MicroBatcher(InferenceSession.from_estimator(clf), max_batch=8)
        batcher.submit(x[:1])
        batcher.submit(CSRMatrix.from_dense(x[1:2]))
        batcher.drain()
        assert batcher.stats.n_batches == 2

    def test_predict_kind_fuses_with_proba(self, fitted3):
        """predict and predict_proba share the fused probability pass."""
        clf, x, _ = fitted3
        batcher = MicroBatcher(InferenceSession.from_estimator(clf), max_batch=8)
        proba_req = batcher.submit(x[:2], kind="predict_proba")
        label_req = batcher.submit(x[2:4], kind="predict")
        batcher.drain()
        assert batcher.stats.n_batches == 1
        assert np.array_equal(
            proba_req.result, _one_shot_proba(clf.model_, x[:2])
        )
        assert np.array_equal(label_req.result, clf.predict(x[2:4]))

    def test_latency_accounting(self, fitted3):
        clf, x, _ = fitted3
        batcher = MicroBatcher(
            InferenceSession.from_estimator(clf), max_batch=4, max_wait_s=2.0
        )
        early = batcher.submit(x[:1], arrival_s=0.0)
        late = batcher.submit(x[1:2], arrival_s=1.5)
        batcher.drain()
        # Same batch: the early request queued ~1.5s longer.
        assert early.batch_id == late.batch_id
        assert early.queue_s == pytest.approx(late.queue_s + 1.5)
        assert early.compute_s == late.compute_s > 0
        assert early.latency_s == early.queue_s + early.compute_s
        assert batcher.stats.latency_percentile(100.0) >= early.latency_s
        assert batcher.stats.mean_batch_size == 2.0

    def test_result_before_drain_raises(self, fitted3):
        clf, x, _ = fitted3
        batcher = MicroBatcher(InferenceSession.from_estimator(clf))
        handle = batcher.submit(x[:1])
        with pytest.raises(ValidationError):
            handle.result
        assert batcher.n_pending == 1
        batcher.drain()
        assert batcher.n_pending == 0
        assert isinstance(handle, ServedRequest) and handle.done

    def test_validation_errors(self, fitted3, session3):
        clf, x, _ = fitted3
        with pytest.raises(ValidationError):
            MicroBatcher("not a session")
        with pytest.raises(ValidationError):
            MicroBatcher(session3, max_batch=0)
        with pytest.raises(ValidationError):
            MicroBatcher(session3, max_wait_s=-1.0)
        batcher = MicroBatcher(session3)
        with pytest.raises(ValidationError):
            batcher.submit(x[:1], kind="frobnicate")
        batcher.submit(x[:1], arrival_s=2.0)
        with pytest.raises(ValidationError):
            batcher.submit(x[:1], arrival_s=1.0)  # arrivals must not regress


class TestServingTelemetry:
    def test_spans_and_request_events(self, fitted3):
        from repro.telemetry import Tracer

        clf, x, _ = fitted3
        tracer = Tracer()
        config = PredictorConfig(device=scaled_tesla_p100(), tracer=tracer)
        session = InferenceSession(clf.model_, config)
        batcher = MicroBatcher(session, max_batch=4)
        batcher.submit(x[:1])
        batcher.submit(x[1:3])
        batcher.drain()
        names = [record["name"] for record in tracer.to_records()]
        assert "serve_seal" in names
        assert "serve_batch" in names
        assert names.count("serve_request") == 2
