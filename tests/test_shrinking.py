"""Unit tests for the shrinking SMO solver."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.gpusim import make_engine, scaled_tesla_p100
from repro.kernels import GaussianKernel, KernelRowComputer
from repro.solvers import ClassicSMOSolver, ShrinkingSMOSolver

from tests.conftest import make_binary_problem


def solve_pair(x, y, penalty=10.0, **kwargs):
    engine = make_engine(scaled_tesla_p100())
    rows = KernelRowComputer(engine, GaussianKernel(gamma=0.25), x)
    result = ShrinkingSMOSolver(penalty=penalty, **kwargs).solve(rows, y)
    return result, engine


def solve_classic(x, y, penalty=10.0):
    engine = make_engine(scaled_tesla_p100())
    rows = KernelRowComputer(engine, GaussianKernel(gamma=0.25), x)
    return ClassicSMOSolver(penalty=penalty).solve(rows, y), engine


class TestEquivalence:
    """Shrinking must not change the learned classifier."""

    @pytest.mark.parametrize("seed", [1, 4, 9])
    def test_same_solution_as_classic(self, seed):
        x, y = make_binary_problem(n=250, separation=0.8, seed=seed)
        classic, _ = solve_classic(x, y)
        shrunk, _ = solve_pair(x, y, shrink_interval=40)
        assert shrunk.objective == pytest.approx(classic.objective, rel=1e-6)
        assert shrunk.bias == pytest.approx(classic.bias, abs=1e-6)
        assert np.allclose(shrunk.alpha, classic.alpha, atol=1e-8)

    def test_global_kkt_conditions_hold(self):
        x, y = make_binary_problem(n=200, separation=0.6, seed=2)
        result, engine = solve_pair(x, y, shrink_interval=30)
        gram = GaussianKernel(0.25).pairwise(engine, x, x, category="k")
        f = (result.alpha * y) @ gram - y
        up = ((y > 0) & (result.alpha < 10.0)) | ((y < 0) & (result.alpha > 0))
        low = ((y > 0) & (result.alpha > 0)) | ((y < 0) & (result.alpha < 10.0))
        assert f[low].max() - f[up].min() <= 1e-3

    def test_final_f_consistent_after_unshrink(self):
        x, y = make_binary_problem(n=180, separation=0.7, seed=5)
        result, engine = solve_pair(x, y, shrink_interval=25)
        gram = GaussianKernel(0.25).pairwise(engine, x, x, category="k")
        expected = (result.alpha * y) @ gram - y
        assert np.allclose(result.f, expected, atol=1e-8)


class TestShrinkingBehaviour:
    def test_shrinking_actually_happens(self):
        # Well-separated data at moderate C pins many instances at bounds.
        x, y = make_binary_problem(n=300, separation=2.0, noise=0.6, seed=7)
        result, _ = solve_pair(x, y, penalty=1.0, shrink_interval=20)
        assert result.diagnostics["shrink_events"] >= 1
        assert result.diagnostics["reconstructions"] >= 1

    def test_shrinking_reduces_state_traffic(self):
        # On a CPU device the per-iteration state ops route to the cache
        # tier, so the shrunk active set shows up directly in shared_bytes.
        from repro.gpusim import xeon_e5_2640v4

        x, y = make_binary_problem(n=300, separation=2.0, noise=0.6, seed=7)
        engine_s = make_engine(xeon_e5_2640v4(1))
        rows_s = KernelRowComputer(engine_s, GaussianKernel(0.25), x)
        shrunk = ShrinkingSMOSolver(penalty=1.0, shrink_interval=20).solve(rows_s, y)
        engine_c = make_engine(xeon_e5_2640v4(1))
        rows_c = KernelRowComputer(engine_c, GaussianKernel(0.25), x)
        classic = ClassicSMOSolver(penalty=1.0).solve(rows_c, y)
        per_iter_shrunk = engine_s.counters.shared_bytes / max(shrunk.iterations, 1)
        per_iter_classic = engine_c.counters.shared_bytes / max(classic.iterations, 1)
        assert per_iter_shrunk < per_iter_classic

    def test_cache_budget_respected(self):
        x, y = make_binary_problem(n=150, seed=3)
        result, _ = solve_pair(x, y, cache_bytes=4 * 150 * 8, shrink_interval=25)
        assert result.converged  # tiny cache only affects cost, not result

    def test_validation(self):
        with pytest.raises(ValidationError):
            ShrinkingSMOSolver(penalty=1.0, epsilon=0.0)

    def test_label_mismatch(self, gpu_engine, rng):
        rows = KernelRowComputer(gpu_engine, GaussianKernel(1.0), rng.normal(size=(5, 2)))
        with pytest.raises(ValidationError):
            ShrinkingSMOSolver(penalty=1.0).solve(rows, np.array([1.0, -1.0]))

    def test_iteration_cap_warns_and_reconstructs(self):
        from repro.exceptions import ConvergenceWarning

        x, y = make_binary_problem(n=200, separation=0.3, seed=1)
        with pytest.warns(ConvergenceWarning):
            result, engine = solve_pair(x, y, max_iterations=50, shrink_interval=10)
        # Even when capped, the returned indicators are globally consistent.
        gram = GaussianKernel(0.25).pairwise(engine, x, x, category="k")
        expected = (result.alpha * y) @ gram - y
        assert np.allclose(result.f, expected, atol=1e-8)


class TestLibSVMIntegration:
    def test_libsvm_baseline_uses_shrinking_by_default(self):
        from repro.baselines import LibSVMClassifier

        clf = LibSVMClassifier()
        assert clf._trainer_config().classic_shrinking is True
        assert LibSVMClassifier(shrinking=False)._trainer_config().classic_shrinking is False

    def test_shrinking_flag_preserves_classifier(self):
        from repro.baselines import LibSVMClassifier
        from repro.data import gaussian_blobs

        x, y = gaussian_blobs(150, 5, 3, seed=6)
        on = LibSVMClassifier(C=10.0, gamma=0.4).fit(x, y)
        off = LibSVMClassifier(C=10.0, gamma=0.4, shrinking=False).fit(x, y)
        for a, b in zip(on.model_.records, off.model_.records):
            assert a.bias == pytest.approx(b.bias, abs=1e-6)
