"""Unit tests for the classic second-order SMO solver."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceWarning, ValidationError
from repro.gpusim import make_engine, scaled_tesla_p100
from repro.kernels import GaussianKernel, KernelBuffer, KernelRowComputer, LinearKernel
from repro.solvers import ClassicSMOSolver

from tests.conftest import make_binary_problem


def solve(x, y, penalty=10.0, kernel=None, **solver_kwargs):
    engine = make_engine(scaled_tesla_p100())
    rows = KernelRowComputer(
        engine, kernel if kernel else GaussianKernel(gamma=0.25), x
    )
    solver = ClassicSMOSolver(penalty=penalty, **solver_kwargs)
    return solver.solve(rows, y), rows


def kkt_violation(x, y, alpha, penalty, kernel, engine):
    """Max violation of the dual KKT conditions at tolerance eps."""
    gram = kernel.pairwise(engine, x, x, category="k")
    f = (alpha * y) @ gram - y
    up = ((y > 0) & (alpha < penalty)) | ((y < 0) & (alpha > 0))
    low = ((y > 0) & (alpha > 0)) | ((y < 0) & (alpha < penalty))
    return float(f[low].max() - f[up].min())


class TestConvergence:
    def test_separable_problem_converges(self):
        x, y = make_binary_problem(n=80, separation=6.0, noise=0.3)
        result, rows = solve(x, y)
        assert result.converged
        assert result.final_gap <= 1e-3

    def test_kkt_conditions_hold_at_solution(self):
        x, y = make_binary_problem(n=120, separation=1.0)
        result, rows = solve(x, y)
        violation = kkt_violation(
            x, y, result.alpha, 10.0, rows.kernel, rows.engine
        )
        assert violation <= 1e-3

    def test_equality_constraint_holds(self):
        x, y = make_binary_problem(n=100)
        result, _ = solve(x, y)
        assert abs(np.dot(result.alpha, y)) < 1e-9

    def test_box_constraints_hold(self):
        x, y = make_binary_problem(n=100)
        result, _ = solve(x, y, penalty=5.0)
        assert result.alpha.min() >= 0.0
        assert result.alpha.max() <= 5.0 + 1e-12

    def test_training_accuracy_on_separable_data(self):
        x, y = make_binary_problem(n=100, separation=6.0, noise=0.3)
        result, rows = solve(x, y)
        gram = rows.kernel.pairwise(rows.engine, x, x, category="k")
        decisions = (result.alpha * y) @ gram + result.bias
        assert np.all(np.sign(decisions) == y)

    def test_overlapping_data_has_bound_svs(self):
        x, y = make_binary_problem(n=120, separation=0.4)
        result, _ = solve(x, y, penalty=1.0)
        assert np.any(np.isclose(result.alpha, 1.0))

    def test_linear_kernel(self):
        x, y = make_binary_problem(n=80, separation=4.0, noise=0.5)
        result, rows = solve(x, y, kernel=LinearKernel())
        assert result.converged
        violation = kkt_violation(x, y, result.alpha, 10.0, rows.kernel, rows.engine)
        assert violation <= 1e-3

    def test_objective_matches_reference_qp(self):
        """Cross-check the optimum against scipy's generic QP solution."""
        from scipy.optimize import minimize

        x, y = make_binary_problem(n=40, separation=1.0, seed=9)
        penalty = 2.0
        result, rows = solve(x, y, penalty=penalty)
        gram = rows.kernel.pairwise(rows.engine, x, x, category="k")
        q = (y[:, None] * y[None, :]) * gram

        def negative_dual(alpha):
            return -(alpha.sum() - 0.5 * alpha @ q @ alpha)

        reference = minimize(
            negative_dual,
            result.alpha,
            jac=lambda a: -(np.ones_like(a) - q @ a),
            bounds=[(0, penalty)] * len(y),
            constraints=[{"type": "eq", "fun": lambda a: a @ y}],
            method="SLSQP",
            options={"maxiter": 300, "ftol": 1e-12},
        )
        assert result.objective == pytest.approx(-reference.fun, abs=1e-3)


class TestBufferIntegration:
    def test_cache_reduces_rows_recomputed(self):
        x, y = make_binary_problem(n=120)
        engine = make_engine(scaled_tesla_p100())
        rows = KernelRowComputer(engine, GaussianKernel(0.25), x)
        buffer = KernelBuffer(120, 120, policy="lru")
        solver = ClassicSMOSolver(penalty=10.0, buffer=buffer)
        result = solver.solve(rows, y)
        assert buffer.stats.hits > 0
        assert buffer.stats.inserts < 2 * result.iterations

    def test_cached_and_uncached_agree(self):
        x, y = make_binary_problem(n=90)
        plain, _ = solve(x, y)
        engine = make_engine(scaled_tesla_p100())
        rows = KernelRowComputer(engine, GaussianKernel(0.25), x)
        buffer = KernelBuffer(16, 90, policy="lru")  # tiny, thrashing cache
        cached = ClassicSMOSolver(penalty=10.0, buffer=buffer).solve(rows, y)
        assert cached.objective == pytest.approx(plain.objective, abs=1e-9)
        assert cached.bias == pytest.approx(plain.bias, abs=1e-9)


class TestEdgesAndErrors:
    def test_label_count_mismatch(self, gpu_engine, rng):
        rows = KernelRowComputer(gpu_engine, GaussianKernel(1.0), rng.normal(size=(5, 2)))
        with pytest.raises(ValidationError):
            ClassicSMOSolver(penalty=1.0).solve(rows, np.array([1.0, -1.0]))

    def test_bad_epsilon(self):
        with pytest.raises(ValidationError):
            ClassicSMOSolver(penalty=1.0, epsilon=0.0)

    def test_iteration_cap_warns(self):
        x, y = make_binary_problem(n=120, separation=0.3)
        with pytest.warns(ConvergenceWarning):
            result, _ = solve(x, y, max_iterations=3)
        assert not result.converged
        assert result.iterations == 3

    def test_two_instances(self):
        x = np.array([[0.0, 0.0], [1.0, 1.0]])
        y = np.array([-1.0, 1.0])
        result, _ = solve(x, y, penalty=1.0)
        assert result.converged
        assert result.n_support == 2

    def test_warm_start_converges_faster(self):
        x, y = make_binary_problem(n=120)
        cold, rows = solve(x, y)
        engine = make_engine(scaled_tesla_p100())
        rows2 = KernelRowComputer(engine, GaussianKernel(0.25), x)
        warm = ClassicSMOSolver(penalty=10.0).solve(rows2, y, alpha0=cold.alpha)
        assert warm.iterations <= max(1, cold.iterations // 10)
        assert warm.objective == pytest.approx(cold.objective, abs=1e-6)

    def test_warm_start_shape_check(self, gpu_engine):
        x, y = make_binary_problem(n=10)
        rows = KernelRowComputer(gpu_engine, GaussianKernel(0.25), x)
        with pytest.raises(ValidationError):
            ClassicSMOSolver(penalty=1.0).solve(rows, y, alpha0=np.zeros(3))

    def test_result_reports_support_vectors(self):
        x, y = make_binary_problem(n=80)
        result, _ = solve(x, y)
        assert result.n_support == len(result.support_indices)
        assert np.all(result.alpha[result.support_indices] > 0)
