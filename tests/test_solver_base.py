"""Unit tests for solver-shared state helpers and invariants."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.solvers import bias_from_f, dual_objective, lower_mask, optimality_gap, upper_mask
from repro.solvers.base import validate_binary_problem


class TestMasks:
    def test_index_sets_match_paper_definitions(self):
        """Check I_up = I1 u I2 u I3 and I_low = I1 u I4 u I5 (Section 2.1.1)."""
        penalty = 2.0
        y = np.array([+1, +1, +1, -1, -1, -1], dtype=np.float64)
        alpha = np.array([1.0, 0.0, 2.0, 1.0, 0.0, 2.0])
        # categories:   I1   I2   I4   I1   I5   I3
        up = upper_mask(y, alpha, penalty)
        low = lower_mask(y, alpha, penalty)
        assert up.tolist() == [True, True, False, True, False, True]
        assert low.tolist() == [True, False, True, True, True, False]

    def test_free_svs_in_both_sets(self):
        y = np.array([1.0, -1.0])
        alpha = np.array([0.5, 0.5])
        assert upper_mask(y, alpha, 1.0).all()
        assert lower_mask(y, alpha, 1.0).all()


class TestGapAndBias:
    def test_gap_zero_when_sets_empty(self):
        y = np.array([1.0, 1.0])
        alpha = np.array([2.0, 2.0])  # both at C with y=+1: I_up empty
        assert optimality_gap(np.array([0.5, -0.5]), y, alpha, 2.0) == 0.0

    def test_gap_positive_for_violator(self):
        y = np.array([1.0, -1.0])
        alpha = np.zeros(2)
        f = -y  # initial indicators
        assert optimality_gap(f, y, alpha, 1.0) == pytest.approx(2.0)

    def test_bias_averages_the_bound_estimates(self):
        y = np.array([1.0, -1.0])
        alpha = np.array([0.5, 0.5])  # both free
        f = np.array([-0.4, -0.6])
        assert bias_from_f(f, y, alpha, 1.0) == pytest.approx(0.5)

    def test_bias_zero_when_degenerate(self):
        y = np.array([1.0, 1.0])
        alpha = np.array([2.0, 2.0])
        assert bias_from_f(np.array([1.0, 2.0]), y, alpha, 2.0) == 0.0


class TestDualObjective:
    def test_zero_at_alpha_zero(self):
        y = np.array([1.0, -1.0])
        assert dual_objective(np.zeros(2), y, -y) == 0.0

    def test_matches_explicit_quadratic_form(self, rng):
        n = 10
        y = np.where(rng.random(n) > 0.5, 1.0, -1.0)
        x = rng.normal(size=(n, 3))
        kernel = x @ x.T
        alpha = rng.uniform(0, 1, n)
        q = (y[:, None] * y[None, :]) * kernel
        explicit = alpha.sum() - 0.5 * alpha @ q @ alpha
        f = (alpha * y) @ kernel - y  # Eq. 3
        assert dual_objective(alpha, y, f) == pytest.approx(explicit)


class TestValidation:
    def test_accepts_pm_one(self):
        labels = validate_binary_problem([1, -1, 1], 1.0)
        assert labels.dtype == np.float64

    def test_rejects_other_labels(self):
        with pytest.raises(ValidationError):
            validate_binary_problem([0, 1], 1.0)

    def test_rejects_single_class(self):
        with pytest.raises(ValidationError, match="single class"):
            validate_binary_problem([1, 1, 1], 1.0)

    def test_rejects_bad_penalty(self):
        with pytest.raises(ValidationError):
            validate_binary_problem([1, -1], 0.0)

    def test_rejects_single_instance(self):
        with pytest.raises(ValidationError):
            validate_binary_problem([1], 1.0)
