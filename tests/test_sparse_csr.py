"""Unit tests for the from-scratch CSR matrix."""

import numpy as np
import pytest

from repro.exceptions import SparseFormatError
from repro.sparse import CSRMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, dense_matrix):
        csr = CSRMatrix.from_dense(dense_matrix)
        assert np.array_equal(csr.toarray(), dense_matrix)

    def test_from_dense_counts_only_nonzeros(self, dense_matrix):
        csr = CSRMatrix.from_dense(dense_matrix)
        assert csr.nnz == np.count_nonzero(dense_matrix)

    def test_from_dense_tolerance_drops_small_values(self):
        dense = np.array([[1.0, 1e-9], [0.0, 2.0]])
        csr = CSRMatrix.from_dense(dense, tolerance=1e-6)
        assert csr.nnz == 2

    def test_from_dense_rejects_1d(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix.from_dense(np.ones(4))

    def test_from_rows_sorts_columns(self):
        csr = CSRMatrix.from_rows([(np.array([3, 1]), np.array([30.0, 10.0]))], 5)
        cols, vals = csr.row(0)
        assert cols.tolist() == [1, 3]
        assert vals.tolist() == [10.0, 30.0]

    def test_from_rows_rejects_duplicate_columns(self):
        with pytest.raises(SparseFormatError, match="duplicate"):
            CSRMatrix.from_rows([(np.array([2, 2]), np.array([1.0, 2.0]))], 5)

    def test_from_rows_rejects_length_mismatch(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix.from_rows([(np.array([1, 2]), np.array([1.0]))], 5)

    def test_from_rows_empty_rows(self):
        csr = CSRMatrix.from_rows(
            [(np.array([], dtype=np.int64), np.array([])), (np.array([0]), np.array([5.0]))],
            3,
        )
        assert csr.nnz == 1
        assert csr.row_dense(0).tolist() == [0.0, 0.0, 0.0]
        assert csr.row_dense(1).tolist() == [5.0, 0.0, 0.0]

    def test_empty_matrix(self):
        csr = CSRMatrix.empty((4, 3))
        assert csr.nnz == 0
        assert np.array_equal(csr.toarray(), np.zeros((4, 3)))

    def test_zero_row_matrix(self):
        csr = CSRMatrix.empty((0, 3))
        assert csr.toarray().shape == (0, 3)

    def test_vstack(self, rng):
        a = CSRMatrix.from_dense(rng.normal(size=(3, 4)))
        b = CSRMatrix.from_dense(rng.normal(size=(2, 4)))
        stacked = CSRMatrix.vstack([a, b])
        assert np.allclose(
            stacked.toarray(), np.vstack([a.toarray(), b.toarray()])
        )

    def test_vstack_rejects_width_mismatch(self):
        a = CSRMatrix.empty((1, 3))
        b = CSRMatrix.empty((1, 4))
        with pytest.raises(SparseFormatError, match="column mismatch"):
            CSRMatrix.vstack([a, b])

    def test_vstack_requires_input(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix.vstack([])


class TestValidation:
    def test_bad_indptr_length(self):
        with pytest.raises(SparseFormatError, match="indptr"):
            CSRMatrix([1.0], [0], [0, 1, 1], (1, 2))

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(SparseFormatError, match="start at 0"):
            CSRMatrix([1.0], [0], [1, 1], (1, 2))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(SparseFormatError, match="non-decreasing"):
            CSRMatrix([1.0, 2.0], [0, 1], [0, 2, 1], (2, 2))

    def test_column_out_of_range(self):
        with pytest.raises(SparseFormatError, match="out of range"):
            CSRMatrix([1.0], [5], [0, 1], (1, 2))

    def test_unsorted_columns_rejected(self):
        with pytest.raises(SparseFormatError, match="strictly increasing"):
            CSRMatrix([1.0, 2.0], [1, 0], [0, 2], (1, 3))

    def test_data_index_length_mismatch(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([1.0, 2.0], [0], [0, 2], (1, 3))


class TestAccess:
    def test_row_negative_index(self, csr_matrix, dense_matrix):
        assert np.array_equal(csr_matrix.row_dense(-1), dense_matrix[-1])

    def test_row_out_of_range(self, csr_matrix):
        with pytest.raises(IndexError):
            csr_matrix.row(99)

    def test_take_rows_order_and_repeats(self, csr_matrix, dense_matrix):
        sub = csr_matrix.take_rows([3, 0, 3])
        assert np.array_equal(sub.toarray(), dense_matrix[[3, 0, 3]])

    def test_take_rows_empty_selection(self, csr_matrix):
        sub = csr_matrix.take_rows(np.array([], dtype=np.int64))
        assert sub.shape == (0, csr_matrix.shape[1])

    def test_density_and_nbytes(self, csr_matrix):
        assert 0 < csr_matrix.density < 1
        assert csr_matrix.nbytes > 0

    def test_copy_is_independent(self, csr_matrix):
        clone = csr_matrix.copy()
        clone.data[0] = 1e9
        assert csr_matrix.data[0] != 1e9


class TestLinearAlgebra:
    def test_dot_vec(self, csr_matrix, dense_matrix, rng):
        v = rng.normal(size=dense_matrix.shape[1])
        assert np.allclose(csr_matrix.dot_vec(v), dense_matrix @ v)

    def test_dot_vec_shape_check(self, csr_matrix):
        with pytest.raises(SparseFormatError):
            csr_matrix.dot_vec(np.ones(3))

    def test_dot_dense(self, csr_matrix, dense_matrix, rng):
        b = rng.normal(size=(dense_matrix.shape[1], 5))
        assert np.allclose(csr_matrix.dot_dense(b), dense_matrix @ b)

    def test_dot_dense_chunked(self, rng):
        dense = rng.normal(size=(50, 6))
        dense[rng.random((50, 6)) < 0.5] = 0.0
        csr = CSRMatrix.from_dense(dense)
        b = rng.normal(size=(6, 4))
        assert np.allclose(csr.dot_dense(b, chunk_rows=7), dense @ b)

    def test_dot_dense_shape_check(self, csr_matrix):
        with pytest.raises(SparseFormatError):
            csr_matrix.dot_dense(np.ones((3, 2)))

    def test_matmul_transpose(self, rng):
        a_dense = rng.normal(size=(4, 9)) * (rng.random((4, 9)) < 0.5)
        b_dense = rng.normal(size=(6, 9)) * (rng.random((6, 9)) < 0.5)
        a = CSRMatrix.from_dense(a_dense)
        b = CSRMatrix.from_dense(b_dense)
        assert np.allclose(a.matmul_transpose(b), a_dense @ b_dense.T)

    def test_matmul_transpose_with_empty_rows(self):
        a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]]))
        b = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 0.0], [2.0, 0.0]]))
        expected = a.toarray() @ b.toarray().T
        assert np.allclose(a.matmul_transpose(b), expected)

    def test_matmul_transpose_dim_check(self, csr_matrix):
        other = CSRMatrix.empty((2, csr_matrix.shape[1] + 1))
        with pytest.raises(SparseFormatError):
            csr_matrix.matmul_transpose(other)

    def test_row_norms_sq(self, csr_matrix, dense_matrix):
        assert np.allclose(csr_matrix.row_norms_sq(), (dense_matrix**2).sum(axis=1))

    def test_row_norms_with_trailing_empty_rows(self):
        dense = np.array([[1.0, 2.0], [0.0, 0.0], [0.0, 0.0]])
        csr = CSRMatrix.from_dense(dense)
        assert np.allclose(csr.row_norms_sq(), [5.0, 0.0, 0.0])

    def test_scale_rows(self, csr_matrix, dense_matrix):
        factors = np.arange(1, dense_matrix.shape[0] + 1, dtype=np.float64)
        scaled = csr_matrix.scale_rows(factors)
        assert np.allclose(scaled.toarray(), dense_matrix * factors[:, None])

    def test_scale_rows_shape_check(self, csr_matrix):
        with pytest.raises(SparseFormatError):
            csr_matrix.scale_rows(np.ones(2))

    def test_prune_removes_explicit_zeros(self):
        csr = CSRMatrix([1.0, 0.0, 2.0], [0, 1, 2], [0, 2, 3], (2, 3))
        pruned = csr.prune()
        assert pruned.nnz == 2
        assert np.array_equal(pruned.toarray(), csr.toarray())

    def test_allclose(self, csr_matrix):
        assert csr_matrix.allclose(csr_matrix.copy())
        other = csr_matrix.copy()
        other.data[0] += 1.0
        assert not csr_matrix.allclose(other)
