"""Unit tests for LibSVM text-format I/O."""

import io

import numpy as np
import pytest

from repro.exceptions import SparseFormatError
from repro.sparse import CSRMatrix, dump_libsvm, load_libsvm


def roundtrip(matrix, labels, **kwargs):
    buffer = io.StringIO()
    dump_libsvm(matrix, labels, buffer, **kwargs)
    buffer.seek(0)
    return load_libsvm(buffer, n_features=matrix.shape[1], **kwargs)


class TestLoad:
    def test_basic_parse(self):
        text = "1 1:0.5 3:2.0\n-1 2:1.5\n"
        matrix, labels = load_libsvm(io.StringIO(text))
        assert labels.tolist() == [1.0, -1.0]
        assert matrix.shape == (2, 3)
        assert matrix.toarray().tolist() == [[0.5, 0.0, 2.0], [0.0, 1.5, 0.0]]

    def test_comments_and_blank_lines(self):
        text = "# header comment\n1 1:2.0  # trailing\n\n-1 1:3.0\n"
        matrix, labels = load_libsvm(io.StringIO(text))
        assert matrix.shape == (2, 1)
        assert labels.tolist() == [1.0, -1.0]

    def test_unsorted_indices_canonicalised(self):
        matrix, _ = load_libsvm(io.StringIO("1 3:3.0 1:1.0\n"))
        cols, vals = matrix.row(0)
        assert cols.tolist() == [0, 2]
        assert vals.tolist() == [1.0, 3.0]

    def test_zero_based_mode(self):
        matrix, _ = load_libsvm(io.StringIO("1 0:7.0\n"), zero_based=True)
        assert matrix.toarray()[0, 0] == 7.0

    def test_one_based_index_zero_rejected(self):
        with pytest.raises(SparseFormatError, match="below"):
            load_libsvm(io.StringIO("1 0:7.0\n"))

    def test_bad_label(self):
        with pytest.raises(SparseFormatError, match="bad label"):
            load_libsvm(io.StringIO("spam 1:1.0\n"))

    def test_bad_feature(self):
        with pytest.raises(SparseFormatError, match="bad feature"):
            load_libsvm(io.StringIO("1 1=1.0\n"))

    def test_n_features_too_small(self):
        with pytest.raises(SparseFormatError, match="exceeds"):
            load_libsvm(io.StringIO("1 5:1.0\n"), n_features=2)

    def test_n_features_padding(self):
        matrix, _ = load_libsvm(io.StringIO("1 1:1.0\n"), n_features=10)
        assert matrix.shape == (1, 10)

    def test_instance_with_no_features(self):
        matrix, labels = load_libsvm(io.StringIO("2\n3 1:1.0\n"))
        assert matrix.shape == (2, 1)
        assert labels.tolist() == [2.0, 3.0]

    def test_file_path_roundtrip(self, tmp_path, rng):
        dense = rng.normal(size=(5, 4)) * (rng.random((5, 4)) < 0.5)
        matrix = CSRMatrix.from_dense(dense)
        labels = np.arange(5.0)
        path = tmp_path / "data.svm"
        dump_libsvm(matrix, labels, path)
        loaded, loaded_labels = load_libsvm(path, n_features=4)
        assert loaded.allclose(matrix)
        assert np.array_equal(loaded_labels, labels)


class TestDump:
    def test_roundtrip_preserves_values(self, csr_matrix):
        labels = np.arange(csr_matrix.shape[0], dtype=np.float64)
        loaded, loaded_labels = roundtrip(csr_matrix, labels)
        assert loaded.allclose(csr_matrix)
        assert np.array_equal(loaded_labels, labels)

    def test_roundtrip_zero_based(self, csr_matrix):
        labels = np.ones(csr_matrix.shape[0])
        loaded, _ = roundtrip(csr_matrix, labels, zero_based=True)
        assert loaded.allclose(csr_matrix)

    def test_label_count_mismatch(self, csr_matrix):
        with pytest.raises(SparseFormatError):
            dump_libsvm(csr_matrix, [1.0], io.StringIO())

    def test_full_precision(self):
        matrix = CSRMatrix.from_dense(np.array([[1.0 / 3.0]]))
        loaded, _ = roundtrip(matrix, [1.0])
        assert loaded.data[0] == matrix.data[0]
