"""Unit tests for the dense/CSR dispatch helpers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.sparse import (
    CSRMatrix,
    as_supported_matrix,
    matmul_transpose,
    matrix_nbytes,
    n_cols,
    n_rows,
    row_norms_sq,
    take_rows,
    to_dense,
)
from repro.sparse.ops import is_sparse


class TestCoercion:
    def test_dense_passthrough(self, rng):
        arr = rng.normal(size=(3, 4))
        out = as_supported_matrix(arr)
        assert isinstance(out, np.ndarray) and out.shape == (3, 4)

    def test_1d_promoted_to_row(self):
        out = as_supported_matrix([1.0, 2.0, 3.0])
        assert out.shape == (1, 3)

    def test_csr_passthrough(self, csr_matrix):
        assert as_supported_matrix(csr_matrix) is csr_matrix

    def test_rejects_3d(self, rng):
        with pytest.raises(ValidationError):
            as_supported_matrix(rng.normal(size=(2, 2, 2)))

    def test_rejects_nan_dense(self):
        with pytest.raises(ValidationError, match="NaN"):
            as_supported_matrix(np.array([[1.0, np.nan]]))

    def test_rejects_inf_csr(self):
        csr = CSRMatrix([np.inf], [0], [0, 1], (1, 2))
        with pytest.raises(ValidationError, match="NaN"):
            as_supported_matrix(csr)


class TestDispatch:
    def test_shape_helpers(self, csr_matrix, dense_matrix):
        assert n_rows(csr_matrix) == n_rows(dense_matrix) == 12
        assert n_cols(csr_matrix) == n_cols(dense_matrix) == 7
        assert is_sparse(csr_matrix) and not is_sparse(dense_matrix)

    def test_nbytes(self, csr_matrix, dense_matrix):
        assert matrix_nbytes(dense_matrix) == dense_matrix.nbytes
        assert matrix_nbytes(csr_matrix) == csr_matrix.nbytes

    def test_take_rows_preserves_format(self, csr_matrix, dense_matrix):
        assert isinstance(take_rows(csr_matrix, [0, 2]), CSRMatrix)
        assert isinstance(take_rows(dense_matrix, [0, 2]), np.ndarray)

    def test_to_dense(self, csr_matrix, dense_matrix):
        assert np.array_equal(to_dense(csr_matrix), dense_matrix)
        assert np.array_equal(to_dense(dense_matrix), dense_matrix)

    def test_row_norms_agree(self, csr_matrix, dense_matrix):
        assert np.allclose(row_norms_sq(csr_matrix), row_norms_sq(dense_matrix))


class TestMatmulTranspose:
    @pytest.mark.parametrize("a_sparse", [False, True])
    @pytest.mark.parametrize("b_sparse", [False, True])
    def test_all_combinations(self, rng, a_sparse, b_sparse):
        a_dense = rng.normal(size=(5, 8)) * (rng.random((5, 8)) < 0.6)
        b_dense = rng.normal(size=(7, 8)) * (rng.random((7, 8)) < 0.6)
        a = CSRMatrix.from_dense(a_dense) if a_sparse else a_dense
        b = CSRMatrix.from_dense(b_dense) if b_sparse else b_dense
        result = matmul_transpose(a, b)
        assert isinstance(result, np.ndarray)
        assert np.allclose(result, a_dense @ b_dense.T)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError):
            matmul_transpose(rng.normal(size=(2, 3)), rng.normal(size=(2, 4)))
