"""Property-based tests for the CSR substrate (hypothesis)."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import CSRMatrix, dump_libsvm, load_libsvm, matmul_transpose

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


def dense_matrices(max_rows=8, max_cols=8):
    shapes = st.tuples(
        st.integers(1, max_rows), st.integers(1, max_cols)
    )
    return shapes.flatmap(lambda s: arrays(np.float64, s, elements=finite))


def sparsify(array, keep=0.5):
    """Deterministically zero out a fraction of the entries."""
    mask = (np.abs(array) % 1.0) < keep
    return np.where(mask, array, 0.0)


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_dense_roundtrip(dense):
    dense = sparsify(dense)
    assert np.array_equal(CSRMatrix.from_dense(dense).toarray(), dense)


@given(dense_matrices())
@settings(max_examples=60, deadline=None)
def test_row_norms_match_dense(dense):
    dense = sparsify(dense)
    csr = CSRMatrix.from_dense(dense)
    assert np.allclose(csr.row_norms_sq(), (dense * dense).sum(axis=1))


@given(dense_matrices(), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_matmul_transpose_matches_dense(dense, other_rows):
    dense = sparsify(dense)
    rng = np.random.default_rng(0)
    other = sparsify(rng.normal(size=(other_rows, dense.shape[1])))
    a = CSRMatrix.from_dense(dense)
    b = CSRMatrix.from_dense(other)
    expected = dense @ other.T
    assert np.allclose(a.matmul_transpose(b), expected, atol=1e-8)
    assert np.allclose(matmul_transpose(a, other), expected, atol=1e-8)
    assert np.allclose(matmul_transpose(dense, b), expected, atol=1e-8)


@given(dense_matrices())
@settings(max_examples=40, deadline=None)
def test_dot_vec_linear_in_argument(dense):
    dense = sparsify(dense)
    csr = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(1)
    u = rng.normal(size=dense.shape[1])
    v = rng.normal(size=dense.shape[1])
    combined = csr.dot_vec(2.0 * u - 3.0 * v)
    assert np.allclose(combined, 2.0 * csr.dot_vec(u) - 3.0 * csr.dot_vec(v))


@given(dense_matrices())
@settings(max_examples=40, deadline=None)
def test_take_rows_matches_numpy_indexing(dense):
    dense = sparsify(dense)
    csr = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(2)
    idx = rng.integers(0, dense.shape[0], size=min(5, dense.shape[0]))
    assert np.array_equal(csr.take_rows(idx).toarray(), dense[idx])


@given(dense_matrices(), dense_matrices())
@settings(max_examples=40, deadline=None)
def test_vstack_row_count(a_dense, b_dense):
    width = min(a_dense.shape[1], b_dense.shape[1])
    a = CSRMatrix.from_dense(sparsify(a_dense[:, :width]))
    b = CSRMatrix.from_dense(sparsify(b_dense[:, :width]))
    stacked = CSRMatrix.vstack([a, b])
    assert stacked.shape == (a.shape[0] + b.shape[0], width)
    assert np.array_equal(
        stacked.toarray(), np.vstack([a.toarray(), b.toarray()])
    )


@given(dense_matrices())
@settings(max_examples=40, deadline=None)
def test_libsvm_roundtrip_property(dense):
    dense = sparsify(dense)
    csr = CSRMatrix.from_dense(dense)
    labels = np.arange(dense.shape[0], dtype=np.float64)
    buffer = io.StringIO()
    dump_libsvm(csr, labels, buffer)
    buffer.seek(0)
    loaded, loaded_labels = load_libsvm(buffer, n_features=dense.shape[1])
    assert loaded.allclose(csr)
    assert np.array_equal(loaded_labels, labels)
