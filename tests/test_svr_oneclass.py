"""Unit tests for epsilon-SVR and the one-class SVM."""

import numpy as np
import pytest

from repro import SVR, NotFittedError, OneClassSVM, ValidationError


@pytest.fixture(scope="module")
def sine_problem():
    rng = np.random.default_rng(0)
    x = np.sort(rng.uniform(-3, 3, 200)).reshape(-1, 1)
    y = np.sin(x).ravel() + rng.normal(0, 0.05, 200)
    return x, y


class TestSVR:
    def test_fits_a_smooth_function(self, sine_problem):
        x, y = sine_problem
        svr = SVR(C=10.0, epsilon_tube=0.1, gamma=1.0).fit(x, y)
        assert svr.score(x, y) > 0.95

    def test_predictions_mostly_within_the_tube(self, sine_problem):
        """Epsilon-insensitive loss: training residuals concentrate in the tube."""
        x, y = sine_problem
        svr = SVR(C=10.0, epsilon_tube=0.15, gamma=1.0).fit(x, y)
        residuals = np.abs(svr.predict(x) - y)
        assert np.mean(residuals <= 0.15 + 0.05) > 0.9

    def test_wider_tube_means_fewer_support_vectors(self, sine_problem):
        x, y = sine_problem
        narrow = SVR(C=10.0, epsilon_tube=0.02, gamma=1.0).fit(x, y)
        wide = SVR(C=10.0, epsilon_tube=0.3, gamma=1.0).fit(x, y)
        assert wide.support_.size < narrow.support_.size

    def test_dual_coefficients_bounded_by_c(self, sine_problem):
        x, y = sine_problem
        svr = SVR(C=2.0, epsilon_tube=0.05, gamma=1.0).fit(x, y)
        assert np.all(np.abs(svr.dual_coef_) <= 2.0 + 1e-9)
        # The equality constraint: sum(alpha - alpha*) = 0.
        assert abs(svr.dual_coef_.sum()) < 1e-9

    def test_linear_kernel_recovers_a_line(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-2, 2, (100, 2))
        y = 3.0 * x[:, 0] - 2.0 * x[:, 1] + 0.5
        svr = SVR(C=100.0, epsilon_tube=0.01, kernel="linear").fit(x, y)
        assert svr.score(x, y) > 0.999

    def test_multifeature_regression(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(150, 4))
        y = np.sin(x[:, 0]) + 0.5 * x[:, 1] ** 2
        svr = SVR(C=10.0, epsilon_tube=0.1, gamma=0.5).fit(x, y)
        assert svr.score(x, y) > 0.9

    def test_validation(self, sine_problem):
        x, y = sine_problem
        with pytest.raises(ValidationError):
            SVR(epsilon_tube=-0.1)
        with pytest.raises(ValidationError):
            SVR().fit(x, y[:10])
        with pytest.raises(ValidationError):
            SVR().fit(x, np.full(200, np.nan))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            SVR().predict(np.ones((2, 1)))

    def test_feature_count_checked(self, sine_problem):
        x, y = sine_problem
        svr = SVR(C=1.0, gamma=1.0).fit(x, y)
        with pytest.raises(ValidationError):
            svr.predict(np.ones((2, 5)))

    def test_training_report_populated(self, sine_problem):
        x, y = sine_problem
        svr = SVR(C=1.0, gamma=1.0).fit(x, y)
        assert svr.training_report_.simulated_seconds > 0
        svr.predict(x)
        assert svr.prediction_report_.n_instances == 200

    def test_constant_targets(self):
        x = np.linspace(0, 1, 30).reshape(-1, 1)
        y = np.full(30, 2.5)
        svr = SVR(C=1.0, epsilon_tube=0.1, gamma=1.0).fit(x, y)
        assert np.allclose(svr.predict(x), 2.5, atol=0.2)


class TestOneClassSVM:
    @pytest.fixture(scope="class")
    def clouds(self):
        rng = np.random.default_rng(1)
        inliers = rng.normal(0, 1, (270, 3))
        outliers = rng.uniform(4, 7, (30, 3)) * rng.choice([-1, 1], (30, 3))
        return inliers, outliers

    def test_detects_outliers(self, clouds):
        inliers, outliers = clouds
        clf = OneClassSVM(nu=0.1, gamma=0.3).fit(inliers)
        assert np.mean(clf.predict(outliers) == -1) > 0.95
        assert np.mean(clf.predict(inliers) == 1) > 0.8

    def test_nu_property(self, clouds):
        """At most ~nu training points are outliers; at least ~nu are SVs."""
        inliers, _ = clouds
        for nu in (0.05, 0.2):
            clf = OneClassSVM(nu=nu, gamma=0.3).fit(inliers)
            outlier_fraction = float(np.mean(clf.predict(inliers) == -1))
            sv_fraction = clf.support_.size / inliers.shape[0]
            assert outlier_fraction <= nu + 0.08
            assert sv_fraction >= nu - 0.05

    def test_sum_alpha_equals_nu_n(self, clouds):
        inliers, _ = clouds
        nu = 0.15
        clf = OneClassSVM(nu=nu, gamma=0.3).fit(inliers)
        assert clf.dual_coef_.sum() == pytest.approx(nu * inliers.shape[0], rel=1e-9)
        assert np.all(clf.dual_coef_ >= 0)
        assert np.all(clf.dual_coef_ <= 1.0 + 1e-12)

    def test_decision_function_sign_matches_predict(self, clouds):
        inliers, outliers = clouds
        clf = OneClassSVM(nu=0.1, gamma=0.3).fit(inliers)
        both = np.vstack([inliers[:20], outliers[:20]])
        values = clf.decision_function(both)
        assert np.array_equal(clf.predict(both), np.where(values >= 0, 1, -1))

    def test_validation(self, clouds):
        with pytest.raises(ValidationError):
            OneClassSVM(nu=0.0)
        with pytest.raises(ValidationError):
            OneClassSVM(nu=1.5)
        with pytest.raises(ValidationError, match="too few"):
            OneClassSVM(nu=0.01).fit(np.ones((5, 2)))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            OneClassSVM().predict(np.ones((2, 2)))
