"""System-level property tests (hypothesis) and failure injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GMPSVC, ValidationError
from repro.baselines import LibSVMClassifier
from repro.data import gaussian_blobs
from repro.exceptions import DeviceMemoryError
from repro.gpusim import DeviceAllocator, make_engine, scaled_tesla_p100
from repro.kernels import GaussianKernel, KernelRowComputer
from repro.solvers import BatchSMOSolver


@given(
    seed=st.integers(0, 10_000),
    n_classes=st.integers(2, 4),
    penalty=st.sampled_from([0.5, 5.0, 50.0]),
)
@settings(max_examples=12, deadline=None)
def test_gmp_and_libsvm_learn_the_same_classifier(seed, n_classes, penalty):
    """The Table 4 claim as a property over random problems."""
    x, y = gaussian_blobs(40 * n_classes, 4, n_classes, seed=seed)
    gmp = GMPSVC(C=penalty, gamma=0.5, working_set_size=16).fit(x, y)
    libsvm = LibSVMClassifier(C=penalty, gamma=0.5).fit(x, y)
    for ours, theirs in zip(gmp.model_.records, libsvm.model_.records):
        assert abs(ours.bias - theirs.bias) < 1e-2
        assert ours.objective == pytest.approx(theirs.objective, rel=1e-3)


@given(seed=st.integers(0, 10_000), n_classes=st.integers(2, 5))
@settings(max_examples=12, deadline=None)
def test_probabilities_always_form_a_distribution(seed, n_classes):
    x, y = gaussian_blobs(30 * n_classes, 3, n_classes, seed=seed)
    clf = GMPSVC(C=5.0, gamma=0.5, working_set_size=16).fit(x, y)
    proba = clf.predict_proba(x)
    assert np.all(np.isfinite(proba))
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert np.all((proba >= 0) & (proba <= 1))


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_simulated_time_is_positive_and_deterministic(seed):
    x, y = gaussian_blobs(80, 3, 2, seed=seed)
    first = GMPSVC(C=2.0, gamma=0.5, working_set_size=16).fit(x, y)
    second = GMPSVC(C=2.0, gamma=0.5, working_set_size=16).fit(x, y)
    assert first.training_report_.simulated_seconds > 0
    assert (
        first.training_report_.simulated_seconds
        == second.training_report_.simulated_seconds
    )


class TestDegenerateData:
    def test_duplicate_instances(self):
        x, y = gaussian_blobs(60, 4, 2, seed=1)
        x = np.vstack([x, x[:10]])
        y = np.concatenate([y, y[:10]])
        clf = GMPSVC(C=5.0, gamma=0.5, working_set_size=16).fit(x, y)
        assert clf.score(x, y) > 0.9

    def test_identical_points_with_conflicting_labels(self):
        rng = np.random.default_rng(0)
        x = np.repeat(rng.normal(size=(6, 3)), 4, axis=0)
        y = np.tile([0, 0, 1, 1], 6)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            clf = GMPSVC(C=1.0, gamma=0.5, working_set_size=8).fit(x, y)
        proba = clf.predict_proba(x)
        assert np.all(np.isfinite(proba))

    def test_constant_feature_columns(self):
        x, y = gaussian_blobs(60, 3, 2, seed=2)
        x = np.hstack([x, np.ones((60, 2))])  # two constant columns
        clf = GMPSVC(C=5.0, gamma=0.5, working_set_size=16).fit(x, y)
        assert clf.score(x, y) > 0.9

    def test_single_feature(self):
        rng = np.random.default_rng(3)
        x = np.concatenate([rng.normal(-2, 0.5, 30), rng.normal(2, 0.5, 30)])
        y = np.concatenate([np.zeros(30), np.ones(30)])
        clf = GMPSVC(C=5.0, gamma=1.0, working_set_size=8).fit(x.reshape(-1, 1), y)
        assert clf.score(x.reshape(-1, 1), y) > 0.95

    def test_extreme_penalty_values(self):
        x, y = gaussian_blobs(60, 3, 2, seed=4)
        for penalty in (1e-3, 1e4):
            clf = GMPSVC(C=penalty, gamma=0.5, working_set_size=16).fit(x, y)
            assert np.all(np.isfinite(clf.predict_proba(x)))

    def test_extreme_gamma(self):
        x, y = gaussian_blobs(60, 3, 2, seed=5)
        for gamma in (1e-4, 50.0):
            clf = GMPSVC(C=1.0, gamma=gamma, working_set_size=16).fit(x, y)
            assert np.all(np.isfinite(clf.decision_function(x)))

    def test_imbalanced_classes(self):
        rng = np.random.default_rng(6)
        x = np.vstack([rng.normal(-1, 1, (95, 4)), rng.normal(2, 0.5, (5, 4))])
        y = np.concatenate([np.zeros(95), np.ones(5)])
        clf = GMPSVC(C=5.0, gamma=0.5, working_set_size=16).fit(x, y)
        assert clf.score(x, y) > 0.9


class TestDeviceFailureInjection:
    def test_buffer_allocation_fails_on_tiny_device(self):
        """A working set bigger than device memory must OOM loudly."""
        x, y = gaussian_blobs(200, 4, 2, seed=7)
        device = scaled_tesla_p100().with_memory(10_000)  # 10 kB "GPU"
        engine = make_engine(device)
        rows = KernelRowComputer(engine, GaussianKernel(0.5), x)
        solver = BatchSMOSolver(
            penalty=1.0, working_set_size=64, register_buffer_memory=True
        )
        with pytest.raises(DeviceMemoryError):
            solver.solve(rows, np.where(y == 0, -1.0, 1.0))

    def test_allocator_recovers_after_oom(self):
        allocator = DeviceAllocator(1000)
        buf = allocator.allocate(900)
        with pytest.raises(DeviceMemoryError):
            allocator.allocate(200)
        buf.free()
        allocator.allocate(950)  # succeeds after the release

    def test_tiny_device_limits_sharing_but_training_succeeds(self):
        x, y = gaussian_blobs(150, 4, 3, seed=8)
        device = scaled_tesla_p100().with_memory(256 * 1024)  # 256 kB
        clf = GMPSVC(C=5.0, gamma=0.5, working_set_size=16, device=device)
        clf.fit(x, y)
        assert clf.score(x, y) > 0.9

    def test_invalid_labels_rejected_before_any_device_work(self):
        clf = GMPSVC()
        with pytest.raises(ValidationError):
            clf.fit(np.ones((4, 2)), [np.nan, 1, 0, 1])
