"""Tests for the telemetry subsystem: tracer, spans, and report serialization."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro import GMPSVC, Tracer
from repro.data import gaussian_blobs
from repro.exceptions import ValidationError
from repro.gpusim.clock import SimClock, TimeCharge
from repro.telemetry import (
    BENCH_SCHEMA_VERSION,
    NULL_SPAN,
    REPORT_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    maybe_span,
)


class FakeWall:
    """A deterministic wall clock the tests can advance by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestSpans:
    def test_records_wall_duration(self):
        wall = FakeWall()
        tracer = Tracer(wall_clock=wall)
        with tracer.span("outer"):
            wall.now += 2.5
        (record,) = tracer.to_records()
        assert record["name"] == "outer"
        assert record["wall_s"] == pytest.approx(2.5)
        assert record["wall_start_s"] == pytest.approx(0.0)

    def test_nesting_links_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.depth == 2
            assert inner.parent_id == outer.span_id
        inner_rec, outer_rec = tracer.to_records()
        assert inner_rec["name"] == "inner"
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert inner_rec["depth"] == 1 and outer_rec["depth"] == 0
        assert outer_rec["parent_id"] is None
        assert tracer.depth == 0

    def test_dual_clocks_simulated_axis(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("charged"):
            clock.charge("kernel_values", TimeCharge(compute_s=0.25))
        (record,) = tracer.to_records()
        assert record["sim_s"] == pytest.approx(0.25)

    def test_span_clock_overrides_tracer_clock(self):
        default = SimClock()
        local = SimClock()
        tracer = Tracer(clock=default)
        with tracer.span("local", clock=local):
            default.charge("a", TimeCharge(compute_s=1.0))
            local.charge("b", TimeCharge(compute_s=0.125))
        (record,) = tracer.to_records()
        assert record["sim_s"] == pytest.approx(0.125)

    def test_attrs_set_and_numpy_coercion(self):
        tracer = Tracer()
        with tracer.span("s", n=np.int64(7)) as span:
            span.set(rate=np.float32(0.5), ids=np.arange(3))
        (record,) = tracer.to_records()
        assert record["attrs"]["n"] == 7
        assert record["attrs"]["rate"] == pytest.approx(0.5)
        assert record["attrs"]["ids"] == [0, 1, 2]
        # must survive stdlib json round-tripping
        json.dumps(record)

    def test_event_is_instant_span(self):
        tracer = Tracer()
        tracer.event("marker", reason="test")
        (record,) = tracer.to_records()
        assert record["name"] == "marker"
        assert record["wall_s"] >= 0.0

    def test_empty_name_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValidationError):
            tracer.span("")

    def test_clear_drops_records(self):
        tracer = Tracer()
        tracer.event("a")
        tracer.clear()
        assert tracer.to_records() == []


class TestDisabledTracing:
    def test_maybe_span_returns_shared_null(self):
        assert maybe_span(None, "anything", n=3) is NULL_SPAN
        assert maybe_span(None, "other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with maybe_span(None, "x") as span:
            assert span.set(a=1) is span

    def test_maybe_span_live_when_tracer_given(self):
        tracer = Tracer()
        with maybe_span(tracer, "live", n=1):
            pass
        assert tracer.to_records()[0]["name"] == "live"


class TestJsonlExport:
    def test_every_line_is_schema_versioned(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("inner")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert record["schema_version"] == TRACE_SCHEMA_VERSION
            assert record["kind"] == "span"

    def test_empty_trace_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        Tracer().write_jsonl(path)
        assert path.read_text() == ""


@pytest.fixture(scope="module")
def traced_classifier():
    """One small traced train+predict run shared by the report tests."""
    x, y = gaussian_blobs(150, 5, 3, seed=3)
    clf = GMPSVC(C=10.0, gamma=0.4)
    clf.tracer = Tracer()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        clf.fit(x[:120], y[:120])
        clf.predict(x[120:])
    return clf


class TestTrainingTrace:
    def test_span_hierarchy_covers_training(self, traced_classifier):
        names = {r["name"] for r in traced_classifier.tracer.to_records()}
        assert {"train_multiclass", "solve_pair", "solver.batch_smo"} <= names

    def test_root_span_carries_summary_attrs(self, traced_classifier):
        (root,) = [
            r
            for r in traced_classifier.tracer.to_records()
            if r["name"] == "train_multiclass"
        ]
        assert root["attrs"]["n_binary_svms"] == 3
        assert root["attrs"]["total_iterations"] > 0
        assert root["sim_s"] > 0.0

    def test_round_telemetry_collected_when_traced(self, traced_classifier):
        report = traced_classifier.training_report_
        for svm in report.per_svm:
            trace = svm["round_trace"]
            assert len(trace) > 0
            first = trace[0]
            assert first["round"] == 1
            assert first["delta"] > 0
            assert first["buffer_misses"] >= 0

    def test_round_telemetry_off_by_default(self):
        x, y = gaussian_blobs(80, 4, 2, seed=4)
        clf = GMPSVC(C=1.0, gamma=0.5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            clf.fit(x, y)
        for svm in clf.training_report_.per_svm:
            assert "round_trace" not in svm


class TestReportSerialization:
    def test_training_report_round_trip(self, traced_classifier):
        report = traced_classifier.training_report_
        parsed = json.loads(report.to_json())
        assert parsed["schema_version"] == REPORT_SCHEMA_VERSION
        assert parsed["kind"] == "training_report"
        assert parsed["simulated_seconds"] == pytest.approx(
            report.simulated_seconds
        )
        assert parsed["n_binary_svms"] == report.n_binary_svms
        assert parsed["total_iterations"] == report.total_iterations
        assert parsed["buffer_hit_rate"] == pytest.approx(report.buffer_hit_rate)
        assert parsed["breakdown"] == pytest.approx(report.breakdown())
        assert len(parsed["per_svm"]) == report.n_binary_svms

    def test_prediction_report_round_trip(self, traced_classifier):
        report = traced_classifier.prediction_report_
        parsed = json.loads(report.to_json(indent=2))
        assert parsed["schema_version"] == REPORT_SCHEMA_VERSION
        assert parsed["kind"] == "prediction_report"
        assert parsed["n_instances"] == 30
        assert parsed["simulated_seconds"] == pytest.approx(
            report.simulated_seconds
        )

    def test_fraction_breakdown_sums_to_one(self, traced_classifier):
        parsed = traced_classifier.training_report_.to_dict()
        assert sum(parsed["fraction_breakdown"].values()) == pytest.approx(1.0)

    def test_schema_versions_are_distinct_namespaces(self):
        assert REPORT_SCHEMA_VERSION.startswith("repro.report/")
        assert TRACE_SCHEMA_VERSION.startswith("repro.trace/")
        assert BENCH_SCHEMA_VERSION.startswith("repro.bench/")
