"""Unit tests for the configurable training/prediction pipelines."""

import numpy as np
import pytest

from repro.core.predictor import PredictorConfig, predict_labels_model, predict_proba_model
from repro.core.trainer import TrainerConfig, train_multiclass
from repro.data import gaussian_blobs
from repro.exceptions import NotFittedError, ValidationError
from repro.gpusim import scaled_tesla_p100, xeon_e5_2640v4
from repro.kernels import GaussianKernel


@pytest.fixture(scope="module")
def problem():
    x, y = gaussian_blobs(150, 5, 3, seed=4)
    return x, y, GaussianKernel(gamma=0.4)


def train(problem, **overrides):
    x, y, kernel = problem
    config = TrainerConfig(
        device=overrides.pop("device", scaled_tesla_p100()),
        working_set_size=32,
        **overrides,
    )
    return train_multiclass(config, x, y, kernel, 10.0)


class TestTrainerConfigurations:
    def test_batched_and_classic_agree(self, problem):
        model_b, _ = train(problem, solver="batched")
        model_c, _ = train(
            problem, solver="classic", share_kernel_values=False, concurrent=False
        )
        for rb, rc in zip(model_b.records, model_c.records):
            assert rb.bias == pytest.approx(rc.bias, abs=5e-3)
            assert rb.objective == pytest.approx(rc.objective, rel=1e-4)

    def test_sharing_changes_nothing_numerically(self, problem):
        with_sharing, _ = train(problem, share_kernel_values=True)
        without, _ = train(problem, share_kernel_values=False)
        for a, b in zip(with_sharing.records, without.records):
            assert a.bias == pytest.approx(b.bias, abs=1e-9)
            assert a.objective == pytest.approx(b.objective, rel=1e-9)

    def test_sharing_reduces_total_flops(self, problem):
        _, report_shared = train(problem, share_kernel_values=True)
        _, report_plain = train(problem, share_kernel_values=False)
        assert report_shared.counters.flops < report_plain.counters.flops
        assert report_shared.sharing_hit_rate > 0

    def test_concurrency_reduces_simulated_time(self, problem):
        _, fast = train(problem, concurrent=True)
        _, slow = train(problem, concurrent=False)
        assert fast.simulated_seconds < slow.simulated_seconds
        assert fast.max_concurrency > 1
        assert fast.concurrency_speedup > 1.0

    def test_cpu_device(self, problem):
        model, report = train(problem, device=xeon_e5_2640v4(40))
        assert "Xeon" in report.device_name
        assert model.n_classes == 3

    def test_classic_cache_config(self, problem):
        _, report = train(
            problem,
            solver="classic",
            share_kernel_values=False,
            classic_cache_bytes=10**6,
        )
        assert report.n_binary_svms == 3

    def test_force_dense(self, problem):
        from repro.data import binary01_features

        x, y = binary01_features(80, 40, 2, active_per_row=6, seed=5)
        config_sparse = TrainerConfig(
            device=scaled_tesla_p100(), working_set_size=32,
            share_kernel_values=False, concurrent=False,
        )
        config_dense = TrainerConfig(
            device=scaled_tesla_p100(), working_set_size=32,
            share_kernel_values=False, concurrent=False, force_dense=True,
        )
        kernel = GaussianKernel(0.5)
        model_s, report_s = train_multiclass(config_sparse, x, y, kernel, 10.0)
        model_d, report_d = train_multiclass(config_dense, x, y, kernel, 10.0)
        assert report_d.counters.flops > report_s.counters.flops
        assert model_d.records[0].bias == pytest.approx(
            model_s.records[0].bias, abs=1e-6
        )

    def test_probability_false_skips_sigmoids(self, problem):
        model, _ = train(problem, probability=False)
        assert all(rec.sigmoid is None for rec in model.records)

    def test_invalid_solver_rejected(self):
        with pytest.raises(ValidationError):
            TrainerConfig(device=scaled_tesla_p100(), solver="quantum")

    def test_report_statistics(self, problem):
        _, report = train(problem)
        assert report.total_iterations > 0
        assert report.kernel_rows_computed > 0
        assert report.peak_task_memory_bytes > 0
        assert len(report.per_svm) == 3
        breakdown = report.fraction_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)


class TestPredictor:
    @pytest.fixture(scope="class")
    def model(self):
        x, y = gaussian_blobs(150, 5, 3, seed=4)
        config = TrainerConfig(device=scaled_tesla_p100(), working_set_size=32)
        model, _ = train_multiclass(config, x, y, GaussianKernel(0.4), 10.0)
        return model, x, y

    def test_proba_shared_equals_unshared(self, model):
        mdl, x, _ = model
        shared, _ = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100(), sv_sharing=True), mdl, x
        )
        unshared, _ = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100(), sv_sharing=False), mdl, x
        )
        assert np.allclose(shared, unshared, atol=1e-10)

    def test_sharing_is_faster(self, model):
        mdl, x, _ = model
        _, fast = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100(), sv_sharing=True), mdl, x
        )
        _, slow = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100(), sv_sharing=False), mdl, x
        )
        assert fast.simulated_seconds < slow.simulated_seconds

    def test_batched_prediction_equals_full(self, model):
        mdl, x, _ = model
        full, _ = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100()), mdl, x
        )
        chunked, _ = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100(), batch_size=17), mdl, x
        )
        assert np.allclose(full, chunked, atol=1e-12)

    def test_coupling_methods_agree_on_labels(self, model):
        mdl, x, _ = model
        eq15, _ = predict_labels_model(
            PredictorConfig(device=scaled_tesla_p100(), coupling_method="eq15"), mdl, x
        )
        iterative, _ = predict_labels_model(
            PredictorConfig(device=scaled_tesla_p100(), coupling_method="iterative"),
            mdl,
            x,
        )
        assert np.mean(eq15 == iterative) > 0.99

    def test_voting_prediction(self, model):
        mdl, x, y = model
        labels, report = predict_labels_model(
            PredictorConfig(device=scaled_tesla_p100()), mdl, x, use_probability=False
        )
        assert np.mean(labels == y) > 0.9
        assert report.n_instances == x.shape[0]

    def test_proba_requires_probabilistic_model(self):
        x, y = gaussian_blobs(80, 4, 2, seed=1)
        config = TrainerConfig(
            device=scaled_tesla_p100(), working_set_size=32, probability=False
        )
        model, _ = train_multiclass(config, x, y, GaussianKernel(0.4), 10.0)
        with pytest.raises(NotFittedError):
            predict_proba_model(PredictorConfig(device=scaled_tesla_p100()), model, x)

    def test_prediction_breakdown_categories(self, model):
        mdl, x, _ = model
        _, report = predict_proba_model(
            PredictorConfig(device=scaled_tesla_p100()), mdl, x
        )
        breakdown = report.breakdown()
        assert "decision_values" in breakdown
        assert "sigmoid" in breakdown
        assert "coupling" in breakdown


class TestAutoBatching:
    def test_auto_batch_respects_device_memory(self):
        from repro.core.predictor import _resolve_batch
        from repro.gpusim import scaled_tesla_p100
        from repro.data import gaussian_blobs
        from repro import GMPSVC

        x, y = gaussian_blobs(200, 4, 3, seed=15)
        clf = GMPSVC(C=5.0, gamma=0.5, working_set_size=16).fit(x, y)
        tiny = scaled_tesla_p100().with_memory(
            clf.model_.sv_pool.n_pool * 8 * 4 * 3  # room for ~3 rows
        )
        config = PredictorConfig(device=tiny)
        batch = _resolve_batch(config, clf.model_, 200)
        assert 1 <= batch <= 3

    def test_memory_constrained_prediction_matches_unconstrained(self):
        from repro.gpusim import scaled_tesla_p100
        from repro.data import gaussian_blobs
        from repro import GMPSVC

        x, y = gaussian_blobs(200, 4, 3, seed=15)
        clf = GMPSVC(C=5.0, gamma=0.5, working_set_size=16).fit(x, y)
        full = clf.predict_proba(x)
        tiny = scaled_tesla_p100().with_memory(
            max(clf.model_.sv_pool.n_pool * 8 * 4 * 5, 200_000)
        )
        constrained, _ = predict_proba_model(
            PredictorConfig(device=tiny), clf.model_, x
        )
        assert np.allclose(full, constrained, atol=1e-12)
