"""Warm-start incremental retraining: state mapping and trainer wiring."""

import numpy as np
import pytest

from repro import GMPSVC
from repro.core.trainer import TrainerConfig, train_multiclass
from repro.data import gaussian_blobs
from repro.exceptions import ValidationError
from repro.gpusim import scaled_tesla_p100
from repro.kernels.functions import kernel_from_name
from repro.kernels.rows import KernelRowComputer
from repro.gpusim.engine import make_engine
from repro.solvers.warm_start import (
    map_prior_alphas,
    reconstruct_gradient,
    rescale_into_box,
    warm_start_pair_state,
)


def _grown(seed_extra=9):
    x, y = gaussian_blobs(200, 5, 3, seed=0)
    x2, y2 = gaussian_blobs(40, 5, 3, seed=seed_extra)
    return (
        np.asarray(x),
        y,
        np.vstack([np.asarray(x), np.asarray(x2)]),
        np.concatenate([y, y2]),
    )


class TestMapping:
    def test_maps_onto_local_positions(self):
        labels = np.array([1.0, -1.0, 1.0, -1.0])
        global_ids = np.array([10, 11, 12, 13])
        alpha = map_prior_alphas(
            np.array([12, 11]), np.array([0.5, -0.25]), global_ids, labels
        )
        assert np.array_equal(alpha, [0.0, 0.25, 0.5, 0.0])

    def test_no_prior_svs_is_cold_zero(self):
        labels = np.array([1.0, -1.0])
        alpha = map_prior_alphas(
            np.array([], dtype=int),
            np.array([]),
            np.array([5, 6]),
            labels,
        )
        assert np.array_equal(alpha, [0.0, 0.0])

    def test_missing_global_id_falls_back(self):
        labels = np.array([1.0, -1.0])
        assert (
            map_prior_alphas(
                np.array([99]), np.array([0.5]), np.array([5, 6]), labels
            )
            is None
        )

    def test_flipped_label_falls_back(self):
        # Prior coefficient says the instance was positive; now it's -1.
        labels = np.array([-1.0, 1.0])
        assert (
            map_prior_alphas(
                np.array([5]), np.array([0.5]), np.array([5, 6]), labels
            )
            is None
        )

    def test_rescale_preserves_equality_constraint(self):
        alpha = np.array([3.0, 1.0, 2.0, 2.0])
        labels = np.array([1.0, 1.0, -1.0, -1.0])
        assert abs(np.dot(alpha, labels)) < 1e-12
        shrunk = rescale_into_box(alpha, np.full(4, 1.5))
        assert abs(np.dot(shrunk, labels)) < 1e-12
        assert np.all(shrunk <= 1.5 + 1e-15)
        # Uniform factor: ratios between coordinates are unchanged.
        assert np.allclose(shrunk / alpha, shrunk[0] / alpha[0])

    def test_rescale_noop_when_box_grows(self):
        alpha = np.array([0.5, 0.25])
        out = rescale_into_box(alpha, np.full(2, 10.0))
        assert out is alpha

    def test_gradient_matches_definition(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(12, 3))
        labels = np.where(rng.uniform(size=12) < 0.5, 1.0, -1.0)
        alpha = np.abs(rng.normal(size=12)) * (rng.uniform(size=12) < 0.5)
        kernel = kernel_from_name("gaussian", gamma=0.7)
        engine = make_engine(scaled_tesla_p100())
        rows = KernelRowComputer(engine, kernel, data)
        f = reconstruct_gradient(rows, labels, alpha)
        full = kernel.pairwise(
            make_engine(scaled_tesla_p100()), data, data, category="test"
        )
        expected = (alpha * labels) @ full - labels
        assert np.allclose(f, expected, atol=1e-12)

    def test_gradient_cold_is_minus_y(self):
        engine = make_engine(scaled_tesla_p100())
        rows = KernelRowComputer(
            engine, kernel_from_name("linear"), np.eye(3)
        )
        labels = np.array([1.0, -1.0, 1.0])
        assert np.array_equal(
            reconstruct_gradient(rows, labels, np.zeros(3)), -labels
        )

    def test_pair_state_composes(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(8, 3))
        labels = np.where(np.arange(8) % 2 == 0, 1.0, -1.0)
        engine = make_engine(scaled_tesla_p100())
        rows = KernelRowComputer(
            engine, kernel_from_name("gaussian", gamma=0.5), data
        )
        out = warm_start_pair_state(
            rows,
            labels,
            np.array([4, 5]),
            np.array([0.25, -0.25]),
            np.arange(8),
            np.full(8, 10.0),
        )
        assert out is not None
        alpha, f = out
        assert alpha[4] == 0.25 and alpha[5] == 0.25
        assert f.shape == (8,)


class TestTrainerIntegration:
    def _config(self, **kw):
        base = dict(
            device=scaled_tesla_p100(),
            solver="batched",
            working_set_size=32,
            probability=True,
        )
        base.update(kw)
        return TrainerConfig(**base)

    def test_warm_start_reduces_iterations_on_grown_data(self):
        x, y, xg, yg = _grown()
        kernel = kernel_from_name("gaussian", gamma=0.5)
        prior, _ = train_multiclass(self._config(), x, y, kernel, 1.0)
        cold, cold_report = train_multiclass(
            self._config(), xg, yg, kernel, 1.0
        )
        warm, warm_report = train_multiclass(
            self._config(), xg, yg, kernel, 1.0, warm_start=prior
        )
        assert warm_report.total_iterations < cold_report.total_iterations
        assert all(s["warm_start"] for s in warm_report.per_svm)
        assert all(not s.get("warm_start") for s in cold_report.per_svm)

    def test_warm_and_cold_agree_on_predictions(self):
        from repro.core.predictor import PredictorConfig, predict_proba_model

        x, y, xg, yg = _grown()
        kernel = kernel_from_name("gaussian", gamma=0.5)
        prior, _ = train_multiclass(self._config(), x, y, kernel, 1.0)
        cold, _ = train_multiclass(self._config(), xg, yg, kernel, 1.0)
        warm, _ = train_multiclass(
            self._config(), xg, yg, kernel, 1.0, warm_start=prior
        )
        config = PredictorConfig(device=scaled_tesla_p100())
        pc, _ = predict_proba_model(config, cold, xg)
        pw, _ = predict_proba_model(config, warm, xg)
        assert np.argmax(pc, axis=1).tolist() == np.argmax(pw, axis=1).tolist()

    def test_warm_start_with_changed_penalty(self):
        """Shrinking the box rescales the prior point but stays feasible."""
        x, y = gaussian_blobs(200, 5, 3, seed=0)
        kernel = kernel_from_name("gaussian", gamma=0.5)
        prior, _ = train_multiclass(self._config(), x, y, kernel, 4.0)
        warm, report = train_multiclass(
            self._config(), x, y, kernel, 1.0, warm_start=prior
        )
        assert all(s["warm_start"] for s in report.per_svm)
        assert warm.penalty == 1.0

    def test_sequential_path_also_warm_starts(self):
        x, y, xg, yg = _grown()
        kernel = kernel_from_name("gaussian", gamma=0.5)
        prior, _ = train_multiclass(
            self._config(concurrent=False), x, y, kernel, 1.0
        )
        _, report = train_multiclass(
            self._config(concurrent=False), xg, yg, kernel, 1.0,
            warm_start=prior,
        )
        assert all(s["warm_start"] for s in report.per_svm)

    def test_rejects_class_set_mismatch(self):
        x, y = gaussian_blobs(120, 5, 3, seed=0)
        kernel = kernel_from_name("gaussian", gamma=0.5)
        prior, _ = train_multiclass(self._config(), x, y, kernel, 1.0)
        with pytest.raises(ValidationError, match="class set"):
            train_multiclass(
                self._config(), x, np.where(y == 2, 1, y), kernel, 1.0,
                warm_start=prior,
            )

    def test_rejects_feature_count_mismatch(self):
        x, y = gaussian_blobs(120, 5, 3, seed=0)
        kernel = kernel_from_name("gaussian", gamma=0.5)
        prior, _ = train_multiclass(self._config(), x, y, kernel, 1.0)
        with pytest.raises(ValidationError, match="features"):
            train_multiclass(
                self._config(), np.asarray(x)[:, :4], y, kernel, 1.0,
                warm_start=prior,
            )

    def test_rejects_classic_solver(self):
        x, y = gaussian_blobs(120, 5, 3, seed=0)
        kernel = kernel_from_name("gaussian", gamma=0.5)
        prior, _ = train_multiclass(self._config(), x, y, kernel, 1.0)
        with pytest.raises(ValidationError, match="batched"):
            train_multiclass(
                self._config(solver="classic", concurrent=False),
                x, y, kernel, 1.0, warm_start=prior,
            )

    def test_rejects_non_model(self):
        x, y = gaussian_blobs(120, 5, 3, seed=0)
        kernel = kernel_from_name("gaussian", gamma=0.5)
        with pytest.raises(ValidationError, match="MPSVMModel"):
            train_multiclass(
                self._config(), x, y, kernel, 1.0, warm_start="model.repro"
            )


class TestEstimatorSurface:
    def test_gmpsvc_warm_start_param(self):
        x, y, xg, yg = _grown()
        warm_est = GMPSVC(C=1.0, gamma=0.5, warm_start=True)
        warm_est.fit(x, y)
        warm_est.fit(xg, yg)
        warm_iters = warm_est.training_report_.total_iterations
        cold_iters = (
            GMPSVC(C=1.0, gamma=0.5)
            .fit(xg, yg)
            .training_report_.total_iterations
        )
        assert warm_iters < cold_iters

    def test_warm_start_false_is_always_cold(self):
        x, y, xg, yg = _grown()
        est = GMPSVC(C=1.0, gamma=0.5)
        est.fit(x, y)
        est.fit(xg, yg)
        assert not any(
            s.get("warm_start") for s in est.training_report_.per_svm
        )

    def test_warm_start_roundtrips_get_params(self):
        est = GMPSVC(warm_start=True)
        assert est.get_params()["warm_start"] is True
        clone = GMPSVC(**est.get_params())
        assert clone.warm_start is True
