"""Unit tests for violator selection and the inner working-set solver."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.kernels import GaussianKernel
from repro.solvers import select_new_violators, solve_subproblem
from repro.solvers.subproblem import inner_iteration_budget


class TestViolatorSelection:
    def setup_method(self):
        # Hand-built state: f ascending 0..9, all alphas free (both sets).
        self.f = np.arange(10, dtype=np.float64)
        self.y = np.array([1.0, -1.0] * 5)
        self.alpha = np.full(10, 0.5)
        self.penalty = 1.0

    def test_selects_extremes(self, gpu_engine):
        chosen = select_new_violators(
            gpu_engine, self.f, self.y, self.alpha, self.penalty, 4
        )
        assert set(chosen.tolist()) == {0, 1, 8, 9}

    def test_exclusion_respected(self, gpu_engine):
        chosen = select_new_violators(
            gpu_engine,
            self.f,
            self.y,
            self.alpha,
            self.penalty,
            4,
            exclude=np.array([0, 9]),
        )
        assert set(chosen.tolist()) == {1, 2, 7, 8}

    def test_eligibility_respected(self, gpu_engine):
        # Instance 0 has y=+1, alpha=C: cannot increase -> not in I_up.
        alpha = self.alpha.copy()
        alpha[0] = self.penalty
        chosen = select_new_violators(
            gpu_engine, self.f, self.y, alpha, self.penalty, 2
        )
        assert 0 not in chosen[:1]

    def test_no_double_selection(self, gpu_engine):
        chosen = select_new_violators(
            gpu_engine, self.f, self.y, self.alpha, self.penalty, 20
        )
        assert len(set(chosen.tolist())) == len(chosen)

    def test_q_validation(self, gpu_engine):
        with pytest.raises(ValidationError):
            select_new_violators(
                gpu_engine, self.f, self.y, self.alpha, self.penalty, 1
            )

    def test_empty_when_all_excluded(self, gpu_engine):
        chosen = select_new_violators(
            gpu_engine,
            self.f,
            self.y,
            self.alpha,
            self.penalty,
            4,
            exclude=np.arange(10),
        )
        assert chosen.size == 0


class TestIterationBudget:
    def test_adaptive_scales_with_delta(self):
        near = inner_iteration_budget(64, delta=1e-3, epsilon=1e-3, rule="adaptive")
        far = inner_iteration_budget(64, delta=10.0, epsilon=1e-3, rule="adaptive")
        assert near == 64
        assert far < near
        assert far >= 1

    def test_fixed(self):
        assert inner_iteration_budget(64, 5.0, 1e-3, "fixed") == 32

    def test_to_convergence_is_effectively_unbounded(self):
        assert inner_iteration_budget(64, 5.0, 1e-3, "to_convergence") >= 10**5

    def test_validation(self):
        with pytest.raises(ValidationError):
            inner_iteration_budget(1, 1.0, 1e-3, "fixed")
        with pytest.raises(ValidationError):
            inner_iteration_budget(64, 1.0, 1e-3, "mystery")

    def test_nonpositive_delta(self):
        assert inner_iteration_budget(64, 0.0, 1e-3, "adaptive") >= 1


class TestSubproblem:
    def make_state(self, gpu_engine, n=16, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 3))
        x[: n // 2] -= 1.5
        x[n // 2 :] += 1.5
        y = np.concatenate([-np.ones(n // 2), np.ones(n // 2)])
        kernel = GaussianKernel(0.5).pairwise(gpu_engine, x, x, category="k")
        return kernel, np.ones(n), y, np.zeros(n), -y

    def test_improves_objective(self, gpu_engine):
        kernel, diag, y, alpha, f = self.make_state(gpu_engine)
        result = solve_subproblem(
            gpu_engine, kernel, diag, y, alpha, f, 5.0,
            epsilon=1e-3, max_iterations=1000,
        )
        assert result.iterations > 0
        assert result.local_gap <= 1e-3
        assert np.any(result.alpha > 0)

    def test_respects_iteration_budget(self, gpu_engine):
        kernel, diag, y, alpha, f = self.make_state(gpu_engine)
        result = solve_subproblem(
            gpu_engine, kernel, diag, y, alpha, f, 5.0,
            epsilon=1e-9, max_iterations=2,
        )
        assert result.iterations <= 2

    def test_does_not_mutate_inputs(self, gpu_engine):
        kernel, diag, y, alpha, f = self.make_state(gpu_engine)
        alpha_copy, f_copy = alpha.copy(), f.copy()
        solve_subproblem(
            gpu_engine, kernel, diag, y, alpha, f, 5.0,
            epsilon=1e-3, max_iterations=100,
        )
        assert np.array_equal(alpha, alpha_copy)
        assert np.array_equal(f, f_copy)

    def test_preserves_equality_constraint(self, gpu_engine):
        kernel, diag, y, alpha, f = self.make_state(gpu_engine, seed=3)
        result = solve_subproblem(
            gpu_engine, kernel, diag, y, alpha, f, 5.0,
            epsilon=1e-3, max_iterations=500,
        )
        assert abs(result.alpha @ y - alpha @ y) < 1e-9

    def test_shape_validation(self, gpu_engine):
        with pytest.raises(ValidationError):
            solve_subproblem(
                gpu_engine,
                np.ones((2, 3)),
                np.ones(3),
                np.array([1.0, -1.0, 1.0]),
                np.zeros(3),
                np.zeros(3),
                1.0,
                epsilon=1e-3,
                max_iterations=10,
            )

    def test_single_launch_charged(self, gpu_engine):
        kernel, diag, y, alpha, f = self.make_state(gpu_engine)
        launches_before = gpu_engine.counters.kernel_launches
        solve_subproblem(
            gpu_engine, kernel, diag, y, alpha, f, 5.0,
            epsilon=1e-3, max_iterations=100,
        )
        assert gpu_engine.counters.kernel_launches == launches_before + 1
